import numpy as np
import pytest

from repro.graphs import DirectedGraph, assign_ic_weights
from repro.rrr import sample_rrr_ic
from repro.utils.errors import ValidationError


def test_requires_weights(small_ic_graph, line_graph):
    with pytest.raises(ValidationError):
        sample_rrr_ic(line_graph, 10)


def test_exact_count_and_invariants(small_ic_graph):
    coll, trace = sample_rrr_ic(small_ic_graph, 500, rng=1)
    assert coll.num_sets == 500
    sizes = coll.sizes()
    assert sizes.min() >= 1  # every set contains its source
    for i in (0, 100, 499):
        s = coll.set_at(i)
        assert np.all(np.diff(s) > 0)  # sorted, unique
        assert coll.sources[i] in s


def test_deterministic_chain_reverse_reachability():
    # chain 0->1->2 with p=1: RRR set of source v is {0..v}
    g = DirectedGraph.from_edges([0, 1], [1, 2], n=3, weights=[1.0, 1.0])
    coll, _ = sample_rrr_ic(g, 300, rng=5)
    for i in range(coll.num_sets):
        src = coll.sources[i]
        assert list(coll.set_at(i)) == list(range(src + 1))


def test_zero_probability_gives_singletons(small_ic_graph):
    g = small_ic_graph.with_weights(np.zeros(small_ic_graph.m))
    coll, trace = sample_rrr_ic(g, 200, rng=2)
    assert coll.singleton_fraction() == 1.0
    assert trace.raw_singleton_fraction == 1.0


def test_ris_identity_estimates_spread(small_ic_graph):
    from repro.diffusion import estimate_spread

    coll, _ = sample_rrr_ic(small_ic_graph, 30_000, rng=3)
    v = int(np.argmax(coll.counts))
    ris_estimate = small_ic_graph.n * coll.counts[v] / coll.num_sets
    mc = estimate_spread(small_ic_graph, [v], "IC", 1500, rng=4)
    assert abs(ris_estimate - mc) / max(mc, 1.0) < 0.15


def test_source_elimination_drops_singletons(small_ic_graph):
    coll, trace = sample_rrr_ic(small_ic_graph, 400, rng=6, eliminate_sources=True)
    assert coll.num_sets == 400
    assert coll.empty_fraction() == 0.0
    assert trace.discarded_empty > 0
    # sources must not appear in their own sets
    for i in range(0, 400, 37):
        assert coll.sources[i] not in coll.set_at(i)


def test_source_elimination_on_edgeless_graph_raises():
    g = DirectedGraph(np.zeros(11, dtype=np.int64), np.empty(0, dtype=np.int32),
                      weights=np.empty(0))
    with pytest.raises(ValidationError, match="source elimination"):
        sample_rrr_ic(g, 50, rng=1, eliminate_sources=True)


def test_trace_accounting(small_ic_graph):
    coll, trace = sample_rrr_ic(small_ic_graph, 300, rng=7)
    assert trace.attempted >= 300
    assert trace.kept == trace.attempted  # no elimination
    assert trace.total_stored_elements() == trace.sizes.sum()
    assert trace.edges_examined.min() >= 0
    # every multi-vertex set must have examined at least one edge
    assert np.all(trace.edges_examined[trace.sizes > 1] >= 1)


def test_zero_sets_requested(small_ic_graph):
    coll, trace = sample_rrr_ic(small_ic_graph, 0, rng=1)
    assert coll.num_sets == 0 and trace.attempted == 0


def test_negative_rejected(small_ic_graph):
    with pytest.raises(ValidationError):
        sample_rrr_ic(small_ic_graph, -1)


def test_deterministic_by_seed(small_ic_graph):
    a, _ = sample_rrr_ic(small_ic_graph, 100, rng=9)
    b, _ = sample_rrr_ic(small_ic_graph, 100, rng=9)
    assert np.array_equal(a.flat, b.flat)
    assert np.array_equal(a.offsets, b.offsets)
