import numpy as np
import pytest

from repro.rrr.parallel import sample_rrr_parallel
from repro.utils.errors import ValidationError


def test_validation(small_ic_graph, line_graph):
    with pytest.raises(ValidationError):
        sample_rrr_parallel(line_graph, 10)
    with pytest.raises(ValidationError):
        sample_rrr_parallel(small_ic_graph, -1)
    with pytest.raises(ValidationError):
        sample_rrr_parallel(small_ic_graph, 10, n_jobs=0)


def test_single_job_falls_through(small_ic_graph):
    from repro.rrr import sample_rrr_ic

    par, _ = sample_rrr_parallel(small_ic_graph, 200, rng=7, n_jobs=1)
    ser, _ = sample_rrr_ic(small_ic_graph, 200, rng=7)
    assert np.array_equal(par.flat, ser.flat)


def test_parallel_counts_and_invariants(small_ic_graph):
    coll, trace = sample_rrr_parallel(small_ic_graph, 600, rng=3, n_jobs=2)
    assert coll.num_sets == 600
    assert trace.kept >= 600
    for i in range(0, 600, 47):
        s = coll.set_at(i)
        assert np.all(np.diff(s) > 0)
        assert coll.sources[i] in s


def test_parallel_deterministic_for_fixed_jobs(small_ic_graph):
    a, _ = sample_rrr_parallel(small_ic_graph, 300, rng=11, n_jobs=2)
    b, _ = sample_rrr_parallel(small_ic_graph, 300, rng=11, n_jobs=2)
    assert np.array_equal(a.flat, b.flat)
    assert np.array_equal(a.offsets, b.offsets)


def test_parallel_matches_serial_distribution(small_ic_graph):
    from repro.rrr import sample_rrr_ic

    par, _ = sample_rrr_parallel(small_ic_graph, 4000, rng=5, n_jobs=2)
    ser, _ = sample_rrr_ic(small_ic_graph, 4000, rng=6)
    assert par.sizes().mean() == pytest.approx(ser.sizes().mean(), rel=0.1)


def test_parallel_lt_model(small_lt_graph):
    coll, _ = sample_rrr_parallel(small_lt_graph, 300, model="LT", rng=2, n_jobs=2)
    assert coll.num_sets == 300


def test_parallel_with_elimination(small_ic_graph):
    coll, trace = sample_rrr_parallel(
        small_ic_graph, 300, rng=4, n_jobs=2, eliminate_sources=True
    )
    assert coll.num_sets == 300
    assert coll.empty_fraction() == 0.0


def test_worker_streams_equal_parent_spawned_streams(small_ic_graph):
    # regression: workers used to rebuild PCG64 from the raw 128-bit state
    # (re-hashed through SeedSequence, increment dropped), so they did NOT
    # run the streams spawn_generators derives.  Prove draw-for-draw equality
    # between the pool run and a serial run over the parent-side spawned
    # generators.
    from repro.rrr import sample_rrr_ic
    from repro.utils.rng import spawn_generators

    total, n_jobs = 600, 2
    par, par_trace = sample_rrr_parallel(
        small_ic_graph, total, rng=123, n_jobs=n_jobs
    )
    gens = spawn_generators(123, n_jobs)
    share = total // n_jobs
    parts = []
    for i, gen in enumerate(gens):
        count = share + (total - share * n_jobs if i == n_jobs - 1 else 0)
        parts.append(sample_rrr_ic(small_ic_graph, count, rng=gen)[0])
    manual_flat = np.concatenate([p.flat for p in parts])
    manual_sizes = np.concatenate([np.diff(p.offsets) for p in parts])
    manual_sources = np.concatenate([p.sources for p in parts])
    assert np.array_equal(par.flat, manual_flat)
    assert np.array_equal(np.diff(par.offsets), manual_sizes)
    assert np.array_equal(par.sources, manual_sources)


def test_worker_generator_construction_matches_spawned_child():
    # the SeedSequence child itself must seed the worker generator; going
    # through the raw state loses the stream
    from repro.utils.rng import spawn_generators, spawn_seed_sequences

    children = spawn_seed_sequences(42, 3)
    parent_side = spawn_generators(42, 3)
    for child, expected in zip(children, parent_side):
        worker_side = np.random.Generator(np.random.PCG64(child))
        assert np.array_equal(worker_side.random(16), expected.random(16))


def test_batch_size_forwarded_to_workers(small_ic_graph):
    # regression: the worker job tuple used to drop the caller's
    # batch_size, so workers sampled with the default and diverged from
    # the serial streams whenever batch_size != 16384
    from repro.rrr import sample_rrr_ic
    from repro.utils.rng import spawn_generators

    total, n_jobs, bs = 500, 2, 64
    par, _ = sample_rrr_parallel(
        small_ic_graph, total, rng=9, n_jobs=n_jobs, batch_size=bs
    )
    gens = spawn_generators(9, n_jobs)
    share = total // n_jobs
    parts = []
    for i, gen in enumerate(gens):
        count = share + (total - share * n_jobs if i == n_jobs - 1 else 0)
        parts.append(
            sample_rrr_ic(small_ic_graph, count, rng=gen, batch_size=bs)[0]
        )
    manual_flat = np.concatenate([p.flat for p in parts])
    assert np.array_equal(par.flat, manual_flat)


def test_sampler_pool_resident_reuse(small_ic_graph):
    from repro.rrr.parallel import SamplerPool

    with SamplerPool(small_ic_graph, n_jobs=2) as pool:
        assert not pool.started  # lazy: no workers until the first fan-out
        a, _ = pool.sample("IC", 400, rng=21)
        assert pool.started
        b, _ = pool.sample("IC", 400, rng=21)
        # the resident pool is stateless across calls: same rng, same sets
        assert np.array_equal(a.flat, b.flat)
        one_shot, _ = sample_rrr_parallel(small_ic_graph, 400, rng=21, n_jobs=2)
        assert np.array_equal(a.flat, one_shot.flat)
    assert not pool.started  # close() tore the executor down


def test_sampler_pool_small_requests_stay_serial(small_ic_graph):
    from repro.rrr import sample_rrr_ic
    from repro.rrr.parallel import SamplerPool

    with SamplerPool(small_ic_graph, n_jobs=4) as pool:
        coll, _ = pool.sample("IC", 3, rng=5)
        assert not pool.started  # 3 sets < 2 * n_jobs: not worth a fan-out
    ser, _ = sample_rrr_ic(small_ic_graph, 3, rng=5)
    assert np.array_equal(coll.flat, ser.flat)


def test_shared_pool_identity_and_mismatch(small_ic_graph):
    from repro.rrr.parallel import shared_pool

    p1 = shared_pool(small_ic_graph, 2)
    p2 = shared_pool(small_ic_graph, 2)
    p3 = shared_pool(small_ic_graph, 3)
    assert p1 is p2
    assert p1 is not p3
    with pytest.raises(ValidationError):
        sample_rrr_parallel(small_ic_graph, 100, rng=0, n_jobs=4, pool=p1)
