import numpy as np
import pytest

from repro.utils.errors import (
    DeviceOOMError,
    GraphFormatError,
    ReproError,
    ValidationError,
)
from repro.utils.validation import (
    as_int_array,
    check_positive,
    check_probability,
    require,
)


def test_require_passes_and_fails():
    require(True, "never raised")
    with pytest.raises(ValidationError, match="boom"):
        require(False, "boom")


def test_as_int_array_accepts_integral_floats():
    out = as_int_array([1.0, 2.0, 3.0], "x")
    assert out.dtype == np.int64
    assert list(out) == [1, 2, 3]


def test_as_int_array_rejects_fractional():
    with pytest.raises(ValidationError):
        as_int_array([1.5], "x")


def test_as_int_array_rejects_2d():
    with pytest.raises(ValidationError):
        as_int_array(np.zeros((2, 2)), "x")


def test_check_probability_bounds():
    assert check_probability(0.0, "p") == 0.0
    assert check_probability(1.0, "p") == 1.0
    with pytest.raises(ValidationError):
        check_probability(1.01, "p")
    with pytest.raises(ValidationError):
        check_probability(-0.01, "p")


def test_check_positive():
    assert check_positive(2.5, "x") == 2.5
    with pytest.raises(ValidationError):
        check_positive(0.0, "x")


def test_error_hierarchy():
    assert issubclass(ValidationError, ReproError)
    assert issubclass(ValidationError, ValueError)
    assert issubclass(GraphFormatError, ReproError)
    assert issubclass(DeviceOOMError, MemoryError)


def test_device_oom_message_fields():
    err = DeviceOOMError(100, 50, 120, "rrr")
    assert err.requested == 100 and err.in_use == 50 and err.capacity == 120
    assert "rrr" in str(err)
