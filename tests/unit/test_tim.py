import numpy as np
import pytest

from repro.imm import BoundsConfig
from repro.imm.tim import estimate_kpt, lambda_tim, run_tim
from repro.utils.errors import ValidationError

BOUNDS = BoundsConfig(theta_scale=0.05)


def test_lambda_tim_monotonicity():
    assert lambda_tim(1000, 50, 0.1, 1.0) > lambda_tim(1000, 50, 0.2, 1.0)
    assert lambda_tim(1000, 100, 0.1, 1.0) > lambda_tim(1000, 10, 0.1, 1.0)
    with pytest.raises(ValidationError):
        lambda_tim(1000, 50, 0.0, 1.0)


def test_kpt_estimate_bounded(small_ic_graph):
    kpt, collection = estimate_kpt(small_ic_graph, 10, rng=1, theta_scale=0.2)
    assert 1.0 <= kpt <= small_ic_graph.n
    assert collection.num_sets > 0


def test_run_tim_produces_valid_seeds(small_ic_graph):
    res = run_tim(small_ic_graph, 8, 0.3, rng=2, bounds=BOUNDS)
    assert res.seeds.size == 8
    assert len(set(res.seeds.tolist())) == 8
    assert res.collection.num_sets >= 1
    assert res.theta >= 1


def test_tim_needs_more_sets_than_imm(small_ic_graph):
    """The gap the paper's §2.2 describes: IMM's martingale bound is
    tighter, so TIM draws (substantially) more RRR sets for the same
    epsilon and guarantee."""
    from repro.imm import run_imm

    tim = run_tim(small_ic_graph, 10, 0.2, rng=3, bounds=BOUNDS)
    imm = run_imm(small_ic_graph, 10, 0.2, rng=3, bounds=BOUNDS)
    assert tim.theta > imm.theta


def test_tim_quality_matches_imm(small_ic_graph):
    from repro.diffusion import estimate_spread
    from repro.imm import run_imm

    tim = run_tim(small_ic_graph, 6, 0.3, rng=4, bounds=BOUNDS)
    imm = run_imm(small_ic_graph, 6, 0.3, rng=4, bounds=BOUNDS)
    sp_tim = estimate_spread(small_ic_graph, tim.seeds, "IC", 400, rng=5)
    sp_imm = estimate_spread(small_ic_graph, imm.seeds, "IC", 400, rng=5)
    assert sp_tim > 0.85 * sp_imm


def test_tim_validation(small_ic_graph, line_graph):
    with pytest.raises(ValidationError):
        run_tim(line_graph, 1, 0.2)
    with pytest.raises(ValidationError):
        run_tim(small_ic_graph, 0, 0.2)
    with pytest.raises(ValidationError):
        run_tim(small_ic_graph, 5, 1.2)


def test_tim_lt_model(small_lt_graph):
    res = run_tim(small_lt_graph, 5, 0.3, model="LT", rng=6, bounds=BOUNDS)
    assert res.seeds.size == 5
