import numpy as np
import pytest

from repro.diffusion import simulate_ic
from repro.graphs import DirectedGraph, assign_ic_weights
from repro.utils.errors import ValidationError


def test_p1_chain_activates_everything(line_graph):
    g = line_graph.with_weights(np.ones(line_graph.m))
    active = simulate_ic(g, [0], rng=0)
    assert active.all()


def test_p0_chain_activates_only_seed(line_graph):
    g = line_graph.with_weights(np.zeros(line_graph.m))
    active = simulate_ic(g, [0], rng=0)
    assert active.sum() == 1 and active[0]


def test_respects_edge_direction(line_graph):
    g = line_graph.with_weights(np.ones(line_graph.m))
    active = simulate_ic(g, [2], rng=0)
    # influence flows forward only: 2 -> 3
    assert list(np.flatnonzero(active)) == [2, 3]


def test_seeds_always_active(small_ic_graph):
    active = simulate_ic(small_ic_graph, [5, 10], rng=1)
    assert active[5] and active[10]


def test_empirical_rate_matches_probability():
    # single edge with p = 0.3: activation frequency must approach 0.3
    g = DirectedGraph.from_edges([0], [1], n=2, weights=[0.3])
    rng = np.random.default_rng(11)
    hits = sum(simulate_ic(g, [0], rng)[1] for _ in range(4000))
    assert 0.27 < hits / 4000 < 0.33


def test_diamond_union_probability(diamond_graph):
    # both paths p=1 except the two final edges at 0.5:
    # P(3 active) = 1 - 0.25 = 0.75
    g = diamond_graph.with_weights(np.array([1.0, 1.0, 0.5, 0.5]))
    rng = np.random.default_rng(5)
    hits = sum(simulate_ic(g, [0], rng)[3] for _ in range(4000))
    assert 0.71 < hits / 4000 < 0.79


def test_requires_weights(line_graph):
    with pytest.raises(ValidationError):
        simulate_ic(line_graph, [0])


def test_rejects_bad_seeds(small_ic_graph):
    with pytest.raises(ValidationError):
        simulate_ic(small_ic_graph, [small_ic_graph.n])


def test_deterministic_given_rng(small_ic_graph):
    a = simulate_ic(small_ic_graph, [0], rng=42)
    b = simulate_ic(small_ic_graph, [0], rng=42)
    assert np.array_equal(a, b)


def test_empty_seed_list(small_ic_graph):
    active = simulate_ic(small_ic_graph, [], rng=0)
    assert active.sum() == 0
