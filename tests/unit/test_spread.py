import numpy as np
import pytest

from repro.diffusion import estimate_spread, exact_spread_ic
from repro.graphs import DirectedGraph
from repro.utils.errors import ValidationError


def test_exact_spread_single_edge():
    g = DirectedGraph.from_edges([0], [1], n=2, weights=[0.3])
    assert exact_spread_ic(g, [0]) == pytest.approx(1.3)


def test_exact_spread_diamond():
    g = DirectedGraph.from_edges([0, 0, 1, 2], [1, 2, 3, 3], n=4,
                                 weights=[0.5, 0.5, 1.0, 1.0])
    # E = 1 + 0.5 + 0.5 + P(3) where P(3) = 1 - 0.25 = 0.75
    assert exact_spread_ic(g, [0]) == pytest.approx(2.75)


def test_monte_carlo_matches_exact():
    g = DirectedGraph.from_edges([0, 0, 1], [1, 2, 2], n=3,
                                 weights=[0.4, 0.6, 0.5])
    exact = exact_spread_ic(g, [0])
    mc = estimate_spread(g, [0], "IC", num_samples=8000, rng=13)
    assert abs(mc - exact) < 0.06


def test_exact_rejects_large_graphs():
    g = DirectedGraph.from_edges(
        list(range(0, 21)), list(range(1, 22)), n=23,
        weights=[0.5] * 21,
    )
    with pytest.raises(ValidationError):
        exact_spread_ic(g, [0])


def test_estimate_spread_validates_model(small_ic_graph):
    with pytest.raises(ValidationError):
        estimate_spread(small_ic_graph, [0], model="SIR")
    with pytest.raises(ValidationError):
        estimate_spread(small_ic_graph, [0], num_samples=0)


def test_spread_monotone_in_seeds(small_ic_graph):
    few = estimate_spread(small_ic_graph, [0], "IC", 400, rng=3)
    more = estimate_spread(small_ic_graph, [0, 1, 2, 3, 4], "IC", 400, rng=3)
    assert more >= few


def test_lt_model_path(small_lt_graph):
    spread = estimate_spread(small_lt_graph, [0, 1], "LT", 100, rng=4)
    assert spread >= 2.0
