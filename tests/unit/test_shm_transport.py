"""Log-encoded IPC transport: packed payloads are exact and smaller.

The contract :mod:`repro.rrr.parallel` leans on: for any sampler output
(IC or LT, with or without source elimination),
``PackedResult.encode(...).decode()`` — including a pickle roundtrip,
i.e. the actual executor pipe — reproduces the raw worker tuple bit for
bit, at a fraction of the bytes.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.rrr import sample_rrr_ic, sample_rrr_lt
from repro.shm import ChunkArena, PackedResult, REGISTRY
from repro.shm.graph import SharedGraph, attach_graph, attach_packed_csc


@pytest.fixture(autouse=True)
def _drain_registry():
    # resident pools/stores from earlier test modules legitimately keep
    # published segments alive; drain them so the zero-registry
    # assertions below see only this module's segments
    from repro.rrr.parallel import shutdown_pools
    from repro.rrr.store import clear_stores

    shutdown_pools()
    clear_stores()
    yield


def _payload(graph, sampler, eliminate, num_sets=300, rng=11):
    collection, trace = sampler(
        graph, num_sets, rng=rng, eliminate_sources=eliminate
    )
    packed = PackedResult.encode(
        collection.flat, collection.offsets, collection.sources, trace, graph.n
    )
    return collection, trace, packed


def _assert_exact(collection, trace, packed):
    flat, offsets, sources, out_trace = packed.decode()
    assert np.array_equal(flat, collection.flat)
    assert flat.dtype == collection.flat.dtype
    assert np.array_equal(offsets, collection.offsets)
    assert offsets.dtype == collection.offsets.dtype
    assert np.array_equal(sources, collection.sources)
    assert np.array_equal(out_trace.sizes, trace.sizes)
    assert np.array_equal(out_trace.rounds, trace.rounds)
    assert np.array_equal(out_trace.edges_examined, trace.edges_examined)
    assert np.array_equal(out_trace.kept_mask, trace.kept_mask)
    assert np.array_equal(out_trace.sources, trace.sources)
    assert out_trace.raw_singletons == trace.raw_singletons


@pytest.mark.parametrize("eliminate", [False, True])
def test_roundtrip_ic(small_ic_graph, eliminate):
    collection, trace, packed = _payload(small_ic_graph, sample_rrr_ic, eliminate)
    _assert_exact(collection, trace, packed)


@pytest.mark.parametrize("eliminate", [False, True])
def test_roundtrip_lt(small_lt_graph, eliminate):
    collection, trace, packed = _payload(small_lt_graph, sample_rrr_lt, eliminate)
    _assert_exact(collection, trace, packed)


def test_roundtrip_through_pickle(small_ic_graph):
    """The wire itself: pickled size tracks nbytes_packed, decode exact."""
    collection, trace, packed = _payload(small_ic_graph, sample_rrr_ic, False)
    wire = pickle.dumps(packed, protocol=pickle.HIGHEST_PROTOCOL)
    assert len(wire) <= packed.nbytes_packed
    _assert_exact(collection, trace, pickle.loads(wire))


def test_packed_is_smaller(small_ic_graph):
    _, _, packed = _payload(small_ic_graph, sample_rrr_ic, False, num_sets=1000)
    # the acceptance floor: >= 30% IPC reduction vs the raw arrays
    assert packed.nbytes_packed <= 0.7 * packed.nbytes_raw


def test_empty_payload():
    from repro.rrr.trace import empty_trace

    packed = PackedResult.encode(
        np.empty(0, dtype=np.int32),
        np.zeros(1, dtype=np.int64),
        np.empty(0, dtype=np.int64),
        empty_trace(),
        10,
    )
    flat, offsets, sources, trace = pickle.loads(pickle.dumps(packed)).decode()
    assert flat.size == 0 and sources.size == 0
    assert np.array_equal(offsets, np.zeros(1, dtype=np.int64))
    assert trace.attempted == 0


def test_arena_merge_matches_concat(small_ic_graph):
    """Decoding straight into an arena chunk equals the concat path."""
    from repro.rrr.collection import RRRCollection

    parts = []
    payloads = []
    for rng in (3, 4, 5):
        collection, trace, packed = _payload(
            small_ic_graph, sample_rrr_ic, False, num_sets=200, rng=rng
        )
        parts.append(collection)
        payloads.append(packed)
    expected = RRRCollection.concat(parts)
    arena = ChunkArena()
    try:
        chunk = arena.merge_payloads(payloads, small_ic_graph.n)
        merged = chunk.collection(small_ic_graph.n)
        assert np.array_equal(merged.flat, expected.flat)
        assert np.array_equal(merged.offsets, expected.offsets)
        assert np.array_equal(merged.sources, expected.sources)
        assert arena.num_chunks == 1
    finally:
        arena.close()
    assert arena.closed


def test_shared_graph_attach_roundtrip(small_ic_graph):
    shared = SharedGraph(small_ic_graph)
    try:
        handle = shared.handle()
        attachment = attach_graph(handle)
        g = attachment.graph
        assert g.n == small_ic_graph.n and g.m == small_ic_graph.m
        assert np.array_equal(g.indptr, small_ic_graph.indptr)
        assert np.array_equal(g.indices, small_ic_graph.indices)
        assert np.array_equal(g.weights, small_ic_graph.weights)
        assert g.fingerprint() == small_ic_graph.fingerprint()
        attachment.close()
    finally:
        shared.close()
    assert REGISTRY.active_count == 0


def test_shared_graph_encoded_variant(small_ic_graph):
    shared = SharedGraph(small_ic_graph)
    try:
        shared.publish_encoded(small_ic_graph)
        shared.publish_encoded(small_ic_graph)  # idempotent
        packed = attach_packed_csc(shared.handle())
        assert np.array_equal(packed.offsets.unpack(), small_ic_graph.indptr)
        assert np.array_equal(packed.neighbors.unpack(), small_ic_graph.indices)
        packed.close()
    finally:
        shared.close()
    assert REGISTRY.active_count == 0
