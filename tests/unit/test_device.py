import pytest

from repro.gpu.device import RTX_A6000, DeviceSpec, SimulatedDevice
from repro.utils.errors import DeviceOOMError, ValidationError


def test_a6000_geometry():
    assert RTX_A6000.num_sms == 84
    assert RTX_A6000.global_mem_bytes == 48 * 2**30
    assert RTX_A6000.resident_blocks == 84 * 16
    assert RTX_A6000.launchable_threads == 84 * 1536
    assert RTX_A6000.launchable_warps == RTX_A6000.launchable_threads // 32


def test_seconds_conversion():
    assert RTX_A6000.seconds(1.8e9) == pytest.approx(1.0)


def test_transfer_cycles_linear_in_bytes():
    base = RTX_A6000.transfer_cycles(0)
    one_mb = RTX_A6000.transfer_cycles(2**20)
    two_mb = RTX_A6000.transfer_cycles(2**21)
    assert two_mb - one_mb == pytest.approx(one_mb - base, rel=1e-9)
    with pytest.raises(ValidationError):
        RTX_A6000.transfer_cycles(-1)


def test_scaled_device():
    small = RTX_A6000.scaled(1000)
    assert small.global_mem_bytes == RTX_A6000.global_mem_bytes // 1000
    assert small.num_sms == 2  # floored
    medium = RTX_A6000.scaled(4, 4)
    assert medium.num_sms == 21
    with pytest.raises(ValidationError):
        RTX_A6000.scaled(0)
    with pytest.raises(ValidationError):
        RTX_A6000.scaled(10, 0)


def test_spec_validation():
    with pytest.raises(ValidationError):
        DeviceSpec(num_sms=0)
    with pytest.raises(ValidationError):
        DeviceSpec(global_mem_bytes=0)


def test_simulated_device_ledger():
    dev = SimulatedDevice(RTX_A6000.scaled(1000))
    dev.charge("a", 100.0)
    dev.charge("b", 50.0)
    dev.charge("a", 25.0)
    assert dev.elapsed_cycles == 175.0
    assert dev.breakdown() == {"a": 125.0, "b": 50.0}
    assert dev.elapsed_seconds() == pytest.approx(dev.spec.seconds(175.0))
    with pytest.raises(ValidationError):
        dev.charge("bad", -1.0)


def test_simulated_device_memory_faults():
    dev = SimulatedDevice(RTX_A6000.scaled(10**7))  # ~5 KB
    with pytest.raises(DeviceOOMError):
        dev.memory.allocate(10**6, "too big")
