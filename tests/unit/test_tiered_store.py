"""Tiered RRR storage: bit-identical round trips, demotion, pressure.

The hard invariant under test: selected seeds (and every RRR prefix)
are bit-identical at every memory budget — tiering may only change
wall-clock and residency, never results.
"""

import numpy as np
import pytest

from repro import IMMOptions, run_imm
from repro.imm.bounds import BoundsConfig
from repro.memory.budget import MemoryBudget, budget_scope, governor
from repro.memory.tiers import (
    COMPRESSED,
    HOT,
    SPILLED,
    CompressedChunk,
    TieredChunk,
    chunk_nbytes,
)
from repro.rrr.store import RRRStore
from repro.service.cache import Substrate, SubstrateTable

BOUNDS = BoundsConfig(theta_scale=0.1)
MB = 1024 * 1024


def _one_chunk(graph, theta=200, entropy=7):
    store = RRRStore(graph, entropy=entropy, chunk_sets=64)
    store.ensure(theta)
    chunk = store._chunks[0]
    collection, trace = chunk.get(promote=False)
    return store, chunk, collection, trace


def _assert_chunks_equal(a, b):
    coll_a, trace_a = a
    coll_b, trace_b = b
    assert np.array_equal(coll_a.flat, coll_b.flat)
    assert np.array_equal(coll_a.offsets, coll_b.offsets)
    if coll_a.sources is None:
        assert coll_b.sources is None
    else:
        assert np.array_equal(coll_a.sources, coll_b.sources)
    assert np.array_equal(trace_a.sizes, trace_b.sizes)
    assert np.array_equal(trace_a.rounds, trace_b.rounds)
    assert np.array_equal(trace_a.edges_examined, trace_b.edges_examined)
    assert np.array_equal(trace_a.kept_mask, trace_b.kept_mask)
    assert np.array_equal(trace_a.sources, trace_b.sources)
    assert trace_a.raw_singletons == trace_b.raw_singletons


def test_compressed_chunk_round_trip_is_bit_identical(small_ic_graph):
    store, chunk, collection, trace = _one_chunk(small_ic_graph)
    packed = CompressedChunk.encode(collection, trace)
    assert 0 < packed.nbytes < chunk_nbytes(collection, trace)
    _assert_chunks_equal(packed.decode(), (collection, trace))
    store.close()


def test_tiered_chunk_walks_down_the_ladder(tmp_path, small_ic_graph):
    store, _, collection, trace = _one_chunk(small_ic_graph)
    chunk = TieredChunk(0, collection, trace,
                        spill_path=tmp_path / "chunk_00000.npz")
    original = chunk.get(promote=False)

    assert chunk.state == HOT
    freed = chunk.demote()
    assert chunk.state == COMPRESSED
    assert freed > 0
    _assert_chunks_equal(chunk.get(promote=False), original)

    chunk.demote()
    assert chunk.state == SPILLED
    assert (tmp_path / "chunk_00000.npz").exists()
    _assert_chunks_equal(chunk.get(promote=False), original)
    assert chunk.state == SPILLED  # transient read did not promote

    _assert_chunks_equal(chunk.get(promote=True), original)
    assert chunk.state == HOT  # promoting read did
    chunk.close()
    store.close()


def test_chunk_accounting_credits_on_gc(small_ic_graph):
    gov = governor()
    before = gov.charged_bytes
    store, chunk, _, _ = _one_chunk(small_ic_graph)
    assert gov.charged_bytes > before
    # dropped without close(): the finalizers must credit the ledger
    del store, chunk
    assert gov.charged_bytes <= before


def test_store_results_bit_identical_across_budgets(small_ic_graph):
    opts = IMMOptions(bounds=BOUNDS)
    baseline = run_imm(small_ic_graph, 5, 0.3, rng=3, options=opts)
    for budget in (64 * MB, 256 * 1024, 64 * 1024):
        with budget_scope(budget):
            result = run_imm(small_ic_graph, 5, 0.3, rng=3, options=opts)
        assert np.array_equal(result.seeds, baseline.seeds), budget
        assert result.theta == baseline.theta


def test_tight_budget_actually_demotes(small_ic_graph):
    store = RRRStore(small_ic_graph, entropy=11, chunk_sets=32)
    with budget_scope(48 * 1024) as gov:
        collection, _ = store.ensure(600)
        assert gov.snapshot()["demotions"] > 0
        # the stream survives tiering bit for bit
        fresh, _ = RRRStore(small_ic_graph, entropy=11,
                            chunk_sets=32).ensure(600)
        assert np.array_equal(collection.flat, fresh.flat)
    store.close()


def test_spilled_store_serves_after_rebalance(small_ic_graph):
    store = RRRStore(small_ic_graph, entropy=13, chunk_sets=32)
    reference, _ = store.ensure(400)
    reference_flat = reference.flat.copy()
    with budget_scope(16 * 1024) as gov:
        gov.request(0)  # pure rebalance: push the chunks cold
        snap = gov.snapshot()
        assert snap["demotions"] > 0
    served, _ = store.ensure(400)
    assert np.array_equal(served.flat, reference_flat)
    store.close()


def test_substrate_pressure_never_closes_inflight_store(small_ic_graph):
    """Regression: a budget-driven sweep must skip busy substrates.

    A worker mid-query holds views into its substrate's store (and, on
    the shm plane, attachments into its arena segments); closing —
    and unlinking — under it would invalidate live memory.  The
    in-flight guard therefore applies to pressure eviction exactly as
    it does to capacity eviction.
    """
    table = SubstrateTable(capacity=4)

    def factory_for(entropy):
        return lambda: RRRStore(small_ic_graph, entropy=entropy,
                                chunk_sets=64)

    busy, _ = table.acquire(("busy",), factory_for(1))
    idle, _ = table.acquire(("idle",), factory_for(2))
    busy.store.ensure(100)
    idle.store.ensure(100)
    table.release(idle)  # only 'idle' goes quiescent

    freed = table._relieve(10**12)  # deficit larger than everything
    assert freed > 0
    assert table.keys() == [("busy",)]
    # the busy store must still serve — nothing was unlinked under it
    collection, _ = busy.store.ensure(150)
    assert collection.num_sets >= 150
    # the idle store was closed and credited
    assert idle.store.governed_nbytes() == 0

    table.release(busy)
    table.close()


def test_substrate_pressure_skips_entirely_busy_table(small_ic_graph):
    table = SubstrateTable(capacity=2)
    sub, _ = table.acquire(("k",), lambda: RRRStore(small_ic_graph,
                                                    entropy=3,
                                                    chunk_sets=64))
    sub.store.ensure(50)
    assert table._relieve(10**12) == 0  # everything in flight: freed nothing
    assert table.keys() == [("k",)]
    table.release(sub)
    table.close()


def test_governor_handler_does_not_pin_stores(small_ic_graph):
    """The governor's pressure handler must hold the store weakly —
    a store that went out of scope gets collected (and its arena
    segments released) even though it once registered for pressure."""
    import weakref

    store = RRRStore(small_ic_graph, entropy=21, chunk_sets=64)
    store.ensure(100)
    ref = weakref.ref(store)
    del store
    assert ref() is None
