import numpy as np
import pytest

from repro.encoding.csc_encoded import encode_graph
from repro.graphs import assign_ic_weights, assign_lt_weights
from repro.graphs.generators import powerlaw_configuration


@pytest.fixture(scope="module")
def graph():
    return assign_ic_weights(powerlaw_configuration(500, 3000, rng=21))


def test_roundtrip_topology(graph):
    decoded = encode_graph(graph).decode()
    assert np.array_equal(decoded.indptr, graph.indptr)
    assert np.array_equal(decoded.indices, graph.indices)


def test_degree_weights_implicit_and_recovered(graph):
    enc = encode_graph(graph)
    assert enc.implicit_indegree_weights
    assert enc.weights is None
    assert np.allclose(enc.decode().weights, graph.weights)


def test_general_weights_fixedpoint():
    g = powerlaw_configuration(200, 1000, rng=2)
    g = assign_ic_weights(g, scheme="uniform_random", rng=3)
    enc = encode_graph(g)
    assert not enc.implicit_indegree_weights
    assert enc.weights is not None
    assert np.abs(enc.decode().weights - g.weights).max() < 2**-15


def test_raw32_mode_counts_weight_bytes(graph):
    enc = encode_graph(graph, weight_mode="raw32")
    assert enc.raw_weight_bytes == 4 * graph.m
    assert np.allclose(enc.decode().weights, graph.weights)
    implicit = encode_graph(graph, weight_mode="auto")
    assert enc.nbytes_packed() == implicit.nbytes_packed() + 4 * graph.m


def test_fixedpoint_mode_forces_quantization(graph):
    enc = encode_graph(graph, weight_mode="fixedpoint")
    assert enc.weights is not None and not enc.implicit_indegree_weights


def test_unknown_weight_mode(graph):
    with pytest.raises(ValueError):
        encode_graph(graph, weight_mode="bogus")


def test_segment_decode_matches(graph):
    enc = encode_graph(graph)
    for v in (0, 7, 123, graph.n - 1):
        assert np.array_equal(enc.in_neighbors(v), graph.in_neighbors(v))


def test_memory_report_positive_savings(graph):
    report = encode_graph(graph).memory_report(graph)
    assert report.raw_bytes == graph.nbytes_csc()
    assert 0 < report.percent_saved < 100


def test_lt_weights_also_implicit():
    g = assign_lt_weights(powerlaw_configuration(200, 1200, rng=5))
    assert encode_graph(g).implicit_indegree_weights


def test_unweighted_graph_encodes():
    g = powerlaw_configuration(200, 1000, rng=8)
    enc = encode_graph(g)
    assert enc.weights is None and not enc.implicit_indegree_weights
    assert enc.decode().weights is None
