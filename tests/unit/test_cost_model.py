import numpy as np
import pytest

from repro.gpu.cost_model import CostModel
from repro.gpu.device import RTX_A6000
from repro.imm.seed_selection import SelectionStats
from repro.utils.errors import ValidationError


@pytest.fixture(scope="module")
def cost():
    return CostModel(RTX_A6000)


def _stats(n_sets: int, k: int = 10, avg_size: float = 8.0) -> SelectionStats:
    return SelectionStats(
        sets_scanned=np.full(k, n_sets, dtype=np.int64),
        sets_found=np.full(k, max(n_sets // 100, 1), dtype=np.int64),
        elements_decremented=np.full(k, max(n_sets // 10, 1), dtype=np.int64),
        avg_set_size=avg_size,
    )


def test_encoded_expansion_cheaper(cost):
    edges = np.array([1000.0, 500.0])
    raw = cost.ic_expansion_cycles(edges, encoded=False)
    packed = cost.ic_expansion_cycles(edges, encoded=True, element_bits=10)
    assert np.all(packed < raw)


def test_expansion_scales_linearly(cost):
    one = cost.ic_expansion_cycles(np.array([100.0]), False)[0]
    two = cost.ic_expansion_cycles(np.array([200.0]), False)[0]
    assert two == pytest.approx(2 * one)


def test_lt_prefix_scan_beats_atomics(cost):
    edges = np.array([3000.0])
    steps = np.array([50.0])
    scan = cost.lt_expansion_cycles(edges, steps, False, use_prefix_scan=True)
    atomic = cost.lt_expansion_cycles(edges, steps, False, use_prefix_scan=False)
    assert scan[0] < atomic[0]  # §3.3's measured conclusion


def test_shared_queue_cheap_until_spill(cost):
    small = np.array([100.0])
    shared, spills = cost.queue_ops_cycles(small, "shared", shared_capacity_elems=1000)
    glob, _ = cost.queue_ops_cycles(small, "global")
    assert shared[0] < glob[0]
    assert spills[0] == 0


def test_shared_queue_spill_penalty(cost):
    big = np.array([5000.0])
    shared, spills = cost.queue_ops_cycles(big, "shared", shared_capacity_elems=1000)
    glob, _ = cost.queue_ops_cycles(big, "global")
    assert spills[0] == 4
    assert shared[0] > glob[0]  # mallocs flip the advantage


def test_queue_validation(cost):
    with pytest.raises(ValidationError):
        cost.queue_ops_cycles(np.array([1.0]), "weird")
    with pytest.raises(ValidationError):
        cost.queue_ops_cycles(np.array([1.0]), "shared")


def test_sort_cycles_superlinear(cost):
    s = cost.sort_cycles(np.array([100.0, 200.0]))
    assert s[1] > 2 * s[0]


def test_store_double_copy_costs_more(cost):
    sizes = np.array([64.0])
    single = cost.store_cycles(sizes, False, 32, copies=1)
    double = cost.store_cycles(sizes, False, 32, copies=2)
    assert double[0] > single[0]


def test_store_packed_cheaper(cost):
    sizes = np.array([512.0])
    raw = cost.store_cycles(sizes, False, 32, copies=1)
    packed = cost.store_cycles(sizes, True, 9, copies=1)
    assert packed[0] < raw[0]


def test_thread_vs_warp_crossover(cost):
    """The Fig. 3 effect: warp-based wins at small N, thread-based at large N."""
    small = _stats(1_000)
    large = _stats(5_000_000)
    assert cost.warp_scan_cycles(small) < cost.thread_scan_cycles(small, encoded=False)
    assert cost.thread_scan_cycles(large, encoded=False) < cost.warp_scan_cycles(large)


def test_cpu_scan_dominates_gpu(cost):
    stats = _stats(100_000)
    cpu = cost.cpu_scan_cycles(stats, 1.0)
    gpu = cost.warp_scan_cycles(stats)
    assert cpu > gpu
    with pytest.raises(ValidationError):
        cost.cpu_scan_cycles(stats, 1.5)


def test_cpu_scan_zero_fraction_free(cost):
    assert cost.cpu_scan_cycles(_stats(1000), 0.0) == 0.0


def test_argmax_scales_with_iterations(cost):
    assert cost.argmax_cycles(10_000, 20) == pytest.approx(
        2 * cost.argmax_cycles(10_000, 10)
    )
