import numpy as np
import pytest

from repro.engines import EIMEngine, GIMEngine, RipplesCPUEngine
from repro.gpu import RTX_A6000
from repro.imm import BoundsConfig, run_imm

SPEC = RTX_A6000.scaled(1000)
BOUNDS = BoundsConfig(theta_scale=0.5)


@pytest.fixture(scope="module")
def workload():
    import repro.graphs as graphs

    g = graphs.assign_ic_weights(graphs.powerlaw_configuration(500, 3000, rng=41))
    vanilla = run_imm(g, 20, 0.15, rng=5, bounds=BOUNDS)
    return g, vanilla


def test_produces_same_seeds_as_gim(workload):
    g, vanilla = workload
    cpu = RipplesCPUEngine().run(g, 20, 0.15, bounds=BOUNDS,
                                 device_spec=SPEC, imm_result=vanilla)
    gim = GIMEngine().run(g, 20, 0.15, bounds=BOUNDS,
                          device_spec=SPEC, imm_result=vanilla)
    assert not cpu.oom
    assert np.array_equal(cpu.seeds, gim.seeds)


def test_cpu_slower_than_gpu_engines(workload):
    """The whole point of the GPU lineage: the CPU baseline loses."""
    g, vanilla = workload
    cpu = RipplesCPUEngine().run(g, 20, 0.15, bounds=BOUNDS,
                                 device_spec=SPEC, imm_result=vanilla)
    gim = GIMEngine().run(g, 20, 0.15, bounds=BOUNDS,
                          device_spec=SPEC, imm_result=vanilla)
    eim = EIMEngine().run(g, 20, 0.15, rng=5, bounds=BOUNDS, device_spec=SPEC)
    assert cpu.total_cycles > gim.total_cycles
    assert cpu.total_cycles > eim.total_cycles


def test_host_memory_survives_gpu_oom_workload(workload):
    """Host RAM (96 GB scaled) absorbs stores that kill the GPU engines."""
    g, vanilla = workload
    # capacity below the raw RRR store: kills gIM, but the host's 2x
    # capacity (96 GB vs 48 GB, proportionally scaled) still fits it
    tiny_gpu = RTX_A6000.scaled(200_000)
    gim = GIMEngine().run(g, 20, 0.15, bounds=BOUNDS,
                          device_spec=tiny_gpu, imm_result=vanilla)
    cpu = RipplesCPUEngine().run(g, 20, 0.15, bounds=BOUNDS,
                                 device_spec=tiny_gpu, imm_result=vanilla)
    assert gim.oom
    assert not cpu.oom


def test_more_cores_help(workload):
    g, vanilla = workload
    slow = RipplesCPUEngine(cores=2).run(g, 20, 0.15, bounds=BOUNDS,
                                         device_spec=SPEC, imm_result=vanilla)
    fast = RipplesCPUEngine(cores=32).run(g, 20, 0.15, bounds=BOUNDS,
                                          device_spec=SPEC, imm_result=vanilla)
    assert fast.total_cycles < slow.total_cycles


def test_no_transfer_costs(workload):
    g, vanilla = workload
    cpu = RipplesCPUEngine().run(g, 20, 0.15, bounds=BOUNDS,
                                 device_spec=SPEC, imm_result=vanilla)
    assert "offload_to_host" not in cpu.breakdown
    assert "graph_upload" not in cpu.breakdown
