"""The fault-tolerant sampling pipeline: injection, supervision, recovery.

The core contract under test: every recovery path — retry after a worker
crash, executor rebuild, hung-worker recycle, serial degradation — must
reproduce the *exact* sets a fault-free run produces, because each job
carries its own pinned ``SeedSequence``.  Faults cost wall-clock, never
results.

The last test is the CI fault drill: when the harness exports
``REPRO_FAULTS`` (crash / hang / memerr matrix), the drill runs a
supervised sample under that ambient plan, proves bit-identity against a
clean run, and writes the :class:`ResilienceReport` JSON to
``REPRO_FAULTS_REPORT`` for the artifact upload.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.resilience import (
    DEFAULT_RESILIENCE,
    FaultPlan,
    ResilienceOptions,
    ResilienceReport,
    merge_reports,
)
from repro.resilience.faults import ENV_VAR, active_spec
from repro.rrr.parallel import (
    SamplerPool,
    sample_rrr_parallel,
    shared_pool,
    shutdown_pools,
)
from repro.utils.errors import (
    SamplingTimeoutError,
    ValidationError,
    WorkerCrashError,
)

# the CI drill's plan comes from the harness environment; capture it at
# import time, before the autouse fixture scrubs the variable so every
# *other* test runs under its explicit plan only
_AMBIENT_FAULTS = os.environ.get(ENV_VAR, "").strip()
_REPORT_PATH = os.environ.get("REPRO_FAULTS_REPORT", "").strip()

#: fast backoff/timeout knobs so faulted tests stay CI-sized
FAST = dict(backoff_base=0.0)


@pytest.fixture(autouse=True)
def _no_ambient_faults(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)


@pytest.fixture(autouse=True)
def _fresh_pools():
    yield
    shutdown_pools()


def _baseline(graph, num_sets=400, rng=7):
    coll, trace = sample_rrr_parallel(graph, num_sets, rng=rng, n_jobs=2)
    assert trace.resilience is not None and trace.resilience.clean
    return coll


# -- fault-plan grammar ------------------------------------------------------


def test_fault_plan_grammar():
    plan = FaultPlan.parse("crash@1; hang(2.5)@0,3#*; memerr@*#1,2")
    crash, hang, memerr = plan.clauses
    assert crash.kind == "crash" and crash.jobs == frozenset((1,))
    assert crash.attempts == frozenset((0,))  # omitted -> first attempt only
    assert hang.kind == "hang" and hang.seconds == 2.5
    assert hang.jobs == frozenset((0, 3)) and hang.attempts is None
    assert memerr.jobs is None and memerr.attempts == frozenset((1, 2))
    assert memerr.matches(17, 2) and not memerr.matches(17, 0)


@pytest.mark.parametrize(
    "spec",
    [
        "",
        ";",
        "crash",  # no @jobs
        "explode@1",  # unknown kind
        "hang(@1",  # unbalanced paren
        "hang(abc)@1",  # bad duration
        "hang(-1)@1",  # negative duration
        "crash@x",  # non-int job
        "crash@-2",  # negative job
        "crash@1#y",  # non-int attempt
    ],
)
def test_fault_plan_rejects_malformed(spec):
    with pytest.raises(ValidationError):
        FaultPlan.parse(spec)


def test_active_spec_validates_eagerly(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "explode@1")
    with pytest.raises(ValidationError):
        active_spec()
    monkeypatch.setenv(ENV_VAR, "crash@1")
    assert active_spec() == "crash@1"
    monkeypatch.delenv(ENV_VAR)
    assert active_spec() is None


# -- options and report ------------------------------------------------------


def test_resilience_options_validation():
    with pytest.raises(ValidationError):
        ResilienceOptions(job_timeout=0.0)
    with pytest.raises(ValidationError):
        ResilienceOptions(max_retries=-1)
    with pytest.raises(ValidationError):
        ResilienceOptions(backoff_base=-0.1)
    opts = ResilienceOptions(backoff_base=0.05)
    assert opts.backoff(0) == pytest.approx(0.05)
    assert opts.backoff(3) == pytest.approx(0.4)  # deterministic: no jitter
    assert DEFAULT_RESILIENCE.serial_fallback


def test_report_tally_merge_and_dict():
    a = ResilienceReport()
    assert a.clean
    a.record("timeout", job=0, attempt=0)
    a.record("crash", job=1, attempt=0, detail="x")
    a.record("failure", job=1, attempt=1)
    assert (a.timeouts, a.crashes, a.failures) == (1, 1, 1)
    assert a.total_faults == 3 and not a.clean
    b = ResilienceReport(retries=2, degraded_jobs=1, wall_clock_lost=0.5)
    merged = merge_reports(a, b)
    assert merged.total_faults == 3 and merged.retries == 2
    assert merged.degraded_jobs == 1
    assert merge_reports(None, a) is a and merge_reports(a, None) is a
    assert merge_reports(None, None) is None
    dumped = json.dumps(merged.as_dict())  # must be JSON-serializable
    assert "degraded_jobs" in dumped


def test_report_publishes_obs_counters():
    report = ResilienceReport(retries=3, rebuilds=1, wall_clock_lost=0.25)
    with obs.profiled() as handle:
        report.publish()
    counters = handle.report().counters
    assert counters["resilience.retries"] == 3
    assert counters["resilience.rebuilds"] == 1
    assert "resilience.degraded_jobs" not in counters  # zeros stay silent


# -- supervised recovery: bit-identity on every path -------------------------


def test_crash_recovery_is_bit_identical(small_ic_graph, monkeypatch):
    clean = _baseline(small_ic_graph)
    monkeypatch.setenv(ENV_VAR, "crash@1")
    coll, trace = sample_rrr_parallel(
        small_ic_graph, 400, rng=7, n_jobs=2,
        resilience=ResilienceOptions(**FAST),
    )
    assert np.array_equal(coll.flat, clean.flat)
    assert np.array_equal(coll.offsets, clean.offsets)
    report = trace.resilience
    assert report.crashes >= 1 and report.rebuilds >= 1 and report.retries >= 1
    assert report.degraded_jobs == 0


def test_memerr_retry_is_bit_identical(small_ic_graph, monkeypatch):
    clean = _baseline(small_ic_graph)
    monkeypatch.setenv(ENV_VAR, "memerr@0")
    coll, trace = sample_rrr_parallel(
        small_ic_graph, 400, rng=7, n_jobs=2,
        resilience=ResilienceOptions(**FAST),
    )
    assert np.array_equal(coll.flat, clean.flat)
    assert trace.resilience.failures == 1
    assert trace.resilience.rebuilds == 0  # the pool survived the raise
    assert any("MemoryError" in e.get("detail", "")
               for e in trace.resilience.events)


def test_hang_timeout_recovery_is_bit_identical(small_ic_graph, monkeypatch):
    clean = _baseline(small_ic_graph)
    monkeypatch.setenv(ENV_VAR, "hang(10)@0")
    coll, trace = sample_rrr_parallel(
        small_ic_graph, 400, rng=7, n_jobs=2,
        resilience=ResilienceOptions(job_timeout=0.5, **FAST),
    )
    assert np.array_equal(coll.flat, clean.flat)
    report = trace.resilience
    assert report.timeouts >= 1
    assert report.rebuilds >= 1  # hung workers can only be reclaimed by recycle
    assert report.wall_clock_lost > 0


def test_retry_budget_exhaustion_degrades_to_serial(small_ic_graph, monkeypatch):
    clean = _baseline(small_ic_graph)
    monkeypatch.setenv(ENV_VAR, "memerr@*#*")  # every job, every attempt
    coll, trace = sample_rrr_parallel(
        small_ic_graph, 400, rng=7, n_jobs=2,
        resilience=ResilienceOptions(max_retries=1, **FAST),
    )
    # injection never fires in-process, so degraded jobs run clean and
    # reproduce their exact sets
    assert np.array_equal(coll.flat, clean.flat)
    report = trace.resilience
    assert report.degraded_jobs == 2
    assert report.failures == 4  # 2 jobs x (first attempt + 1 retry)


def test_fallback_disabled_raises_worker_crash(small_ic_graph, monkeypatch):
    monkeypatch.setenv(ENV_VAR, "memerr@*#*")
    with pytest.raises(WorkerCrashError):
        sample_rrr_parallel(
            small_ic_graph, 400, rng=7, n_jobs=2,
            resilience=ResilienceOptions(
                max_retries=0, serial_fallback=False, **FAST
            ),
        )


def test_fallback_disabled_all_timeouts_raises_timeout(small_ic_graph, monkeypatch):
    monkeypatch.setenv(ENV_VAR, "hang(10)@*#*")
    with pytest.raises(SamplingTimeoutError):
        sample_rrr_parallel(
            small_ic_graph, 400, rng=7, n_jobs=2,
            resilience=ResilienceOptions(
                job_timeout=0.3, max_retries=0, serial_fallback=False, **FAST
            ),
        )


def test_keyboard_interrupt_cancels_and_abandons(small_ic_graph, monkeypatch):
    from repro.rrr import parallel as par

    def interrupt(*args, **kwargs):
        raise KeyboardInterrupt

    pool = SamplerPool(small_ic_graph, 2)
    monkeypatch.setattr(par, "wait", interrupt)
    with pytest.raises(KeyboardInterrupt):
        pool.sample("IC", 400, rng=1)
    assert not pool.started  # the executor was torn down, not leaked
    pool.close()


# -- lifecycle and registry hardening ----------------------------------------


def test_close_is_terminal_and_idempotent(small_ic_graph):
    pool = SamplerPool(small_ic_graph, 2)
    pool.sample("IC", 100, rng=1)
    pool.close()
    pool.close()  # second close is a no-op, not an error
    assert pool.closed and not pool.started
    with pytest.raises(ValidationError):
        pool.sample("IC", 100, rng=1)


def test_shared_pool_evicts_closed_entries(small_ic_graph):
    first = shared_pool(small_ic_graph, 2)
    first.close()
    with obs.profiled() as handle:
        healed = shared_pool(small_ic_graph, 2)
    assert healed is not first and not healed.closed
    assert handle.report().counters["rrr.parallel.pool_evicted"] == 1
    assert shared_pool(small_ic_graph, 2) is healed


def test_shutdown_pools_closes_and_clears(small_ic_graph):
    pool = shared_pool(small_ic_graph, 2)
    pool.sample("IC", 100, rng=1)
    shutdown_pools()
    assert pool.closed
    assert shared_pool(small_ic_graph, 2) is not pool


def test_shared_store_heals_closed_pool(small_ic_graph):
    from repro.rrr.store import clear_stores, shared_store

    clear_stores()
    try:
        pool = shared_pool(small_ic_graph, 2)
        store = shared_store(small_ic_graph, entropy=5, n_jobs=2, pool=pool,
                             chunk_sets=32)
        store.ensure(40)
        before = store.num_cached
        shutdown_pools()  # kills the store's pool out from under it
        healed = shared_store(small_ic_graph, entropy=5, n_jobs=2,
                              chunk_sets=32)
        assert healed is store and healed._pool is None
        coll, _ = healed.ensure(before + 40)  # top-up re-acquires a live pool
        assert coll.num_sets == before + 40
    finally:
        clear_stores()


def test_sample_trace_merge_carries_reports(small_ic_graph, monkeypatch):
    monkeypatch.setenv(ENV_VAR, "crash@0")
    _, faulted = sample_rrr_parallel(
        small_ic_graph, 400, rng=3, n_jobs=2,
        resilience=ResilienceOptions(**FAST),
    )
    monkeypatch.delenv(ENV_VAR)
    _, clean = sample_rrr_parallel(small_ic_graph, 100, rng=4, n_jobs=2)
    merged = faulted.merged_with(clean)
    assert merged.resilience.crashes == faulted.resilience.crashes
    assert merged.attempted == faulted.attempted + clean.attempted


# -- host OOM renders the paper's table cell ---------------------------------


def test_compare_engines_maps_host_memoryerror_to_oom(monkeypatch):
    from repro.experiments import ExperimentConfig, runner

    cfg = ExperimentConfig(datasets=("WV",), sweep_theta_scale=0.1)

    def explode(*args, **kwargs):
        raise MemoryError("host allocation failed")

    # vanilla sampling dies -> gIM and cuRipples cells go OOM, eIM's own
    # run survives and the sweep row still renders
    monkeypatch.setattr(runner, "run_imm", explode)
    row = runner.compare_engines("WV", 5, 0.3, "IC", cfg,
                                 bounds=cfg.bounds(sweep=True))
    assert not row.eim.oom
    assert row.gim.oom and row.curipples.oom
    assert "host OOM" in row.gim.oom_detail
    assert row.table_cell_vs_gim().startswith("OOM/")


def test_compare_engines_maps_eim_memoryerror_to_oom(monkeypatch):
    from repro.experiments import ExperimentConfig, runner

    cfg = ExperimentConfig(datasets=("WV",), sweep_theta_scale=0.1)

    class ExplodingEIM:
        def run(self, *args, **kwargs):
            raise MemoryError("host allocation failed")

    monkeypatch.setattr(runner, "EIMEngine", ExplodingEIM)
    row = runner.compare_engines("WV", 5, 0.3, "IC", cfg,
                                 include_curipples=False,
                                 bounds=cfg.bounds(sweep=True))
    assert row.eim.oom and not row.gim.oom
    assert row.table_cell_vs_gim() == "OOM(eIM)"


# -- the end-to-end acceptance drill (CI fault matrix) -----------------------


def test_fault_drill_reproduces_clean_run(small_ic_graph, monkeypatch):
    """One worker fault per batch must not change ``run_imm``'s output.

    Locally this drills ``crash@1``; in CI the harness exports
    ``REPRO_FAULTS`` (crash / hang / memerr matrix) and
    ``REPRO_FAULTS_REPORT``, and the resulting
    :class:`ResilienceReport` JSON becomes the build artifact.
    """
    from repro.imm import IMMOptions, run_imm

    plan = _AMBIENT_FAULTS or "crash@1"
    options = IMMOptions(
        model="IC", n_jobs=2,
        resilience=ResilienceOptions(job_timeout=1.0, **FAST),
    )
    clean = run_imm(small_ic_graph, 5, 0.3, rng=17, options=options)
    monkeypatch.setenv(ENV_VAR, plan)
    faulted = run_imm(small_ic_graph, 5, 0.3, rng=17, options=options)

    assert np.array_equal(faulted.seeds, clean.seeds)
    assert faulted.theta == clean.theta
    assert np.array_equal(faulted.collection.flat, clean.collection.flat)
    report = faulted.trace.resilience
    assert report is not None and not report.clean

    if _REPORT_PATH:
        path = Path(_REPORT_PATH)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({"plan": plan, **report.as_dict()}, indent=2))
