import numpy as np
import pytest

from repro.encoding.bitmap import bitmap_encode
from repro.rrr import RRRCollection, sample_rrr_ic
from repro.utils.errors import ValidationError


@pytest.fixture
def coll():
    return RRRCollection.from_sets(
        [[0, 5, 9], list(range(60)), [3]], n=100, sources=[0, 1, 3]
    )


def test_hybrid_choice(coll):
    enc = bitmap_encode(coll)
    # n=100 -> bitmap is 16 bytes; arrays of size 3 (12B) stay arrays,
    # the 60-element set (240B) becomes a bitmap
    assert not enc.is_bitmap[0]
    assert enc.is_bitmap[1]
    assert not enc.is_bitmap[2]


def test_roundtrip(coll):
    enc = bitmap_encode(coll)
    for i in range(coll.num_sets):
        assert np.array_equal(enc.set_at(i), coll.set_at(i))


def test_membership(coll):
    enc = bitmap_encode(coll)
    assert enc.contains(0, 5) and not enc.contains(0, 6)
    assert enc.contains(1, 59) and not enc.contains(1, 60)
    assert enc.contains(2, 3)
    with pytest.raises(ValidationError):
        enc.contains(0, 100)


def test_force_bitmap(coll):
    enc = bitmap_encode(coll, force_bitmap=True)
    assert enc.is_bitmap.all()
    assert np.array_equal(enc.set_at(0), coll.set_at(0))


def test_hybrid_never_larger_than_dense(coll):
    hybrid = bitmap_encode(coll).nbytes_total()
    dense = bitmap_encode(coll, force_bitmap=True).nbytes_total()
    assert hybrid <= dense


def test_out_of_range_set(coll):
    enc = bitmap_encode(coll)
    with pytest.raises(ValidationError):
        enc.set_at(5)


def test_on_real_sample(small_ic_graph):
    sample, _ = sample_rrr_ic(small_ic_graph, 500, rng=1)
    enc = bitmap_encode(sample)
    for i in range(0, 500, 43):
        assert np.array_equal(enc.set_at(i), sample.set_at(i))
