import numpy as np
import pytest

from repro.experiments import ExperimentConfig
from repro.utils.errors import ValidationError


def test_defaults():
    cfg = ExperimentConfig()
    assert cfg.scale == "tiny"
    assert len(cfg.datasets) == 16
    assert cfg.default_k == 50 and cfg.default_epsilon == 0.05


def test_validation():
    with pytest.raises(ValidationError):
        ExperimentConfig(scale="mega")
    with pytest.raises(ValidationError):
        ExperimentConfig(datasets=("XX",))
    with pytest.raises(ValidationError):
        ExperimentConfig(repeats=0)


def test_device_scaling():
    cfg = ExperimentConfig()
    dev = cfg.device()
    assert dev.global_mem_bytes == 48 * 2**30 // 1000
    pressured = cfg.device(pressure=True)
    assert pressured.global_mem_bytes < dev.global_mem_bytes
    assert pressured.num_sms == dev.num_sms  # compute geometry unchanged


def test_bounds_modes():
    cfg = ExperimentConfig(theta_scale=0.8, sweep_theta_scale=0.2)
    assert cfg.bounds().theta_scale == 0.8
    assert cfg.bounds(sweep=True).theta_scale == 0.2


def test_graph_cached_and_weighted():
    cfg = ExperimentConfig(datasets=("WV",))
    a = cfg.graph("WV", "IC")
    b = cfg.graph("WV", "IC")
    assert a is b  # cached
    lt = cfg.graph("WV", "LT")
    assert lt is not a
    assert np.array_equal(lt.indices, a.indices)  # same topology
    assert a.has_weights() and lt.has_weights()


def test_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "tiny")
    monkeypatch.setenv("REPRO_REPEATS", "2")
    monkeypatch.setenv("REPRO_DATASETS", "wv, ee")
    monkeypatch.setenv("REPRO_THETA_SCALE", "0.5")
    cfg = ExperimentConfig.from_env()
    assert cfg.repeats == 2
    assert cfg.datasets == ("WV", "EE")
    assert cfg.theta_scale == 0.5 and cfg.sweep_theta_scale == 0.5


def test_from_env_overrides(monkeypatch):
    monkeypatch.setenv("REPRO_REPEATS", "5")
    cfg = ExperimentConfig.from_env(repeats=1)
    assert cfg.repeats == 1


def test_selection_strategy_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_SELECTION_STRATEGY", "lazy")
    assert ExperimentConfig.from_env().selection_strategy == "lazy"
    monkeypatch.delenv("REPRO_SELECTION_STRATEGY")
    assert ExperimentConfig.from_env().selection_strategy == "fast"
    with pytest.raises(ValidationError):
        ExperimentConfig(selection_strategy="quantum")
