import pytest

from repro.gpu.atomics import AtomicCounter
from repro.utils.errors import ValidationError


def test_add_returns_old_value():
    c = AtomicCounter(10)
    assert c.add(5) == 10
    assert c.value == 15
    assert c.add(2) == 15


def test_sub():
    c = AtomicCounter(10)
    assert c.sub(3) == 10
    assert c.value == 7


def test_exchange():
    c = AtomicCounter(1)
    assert c.exchange(9) == 1
    assert c.value == 9


def test_compare_and_swap():
    c = AtomicCounter(5)
    assert c.compare_and_swap(5, 8) == 5
    assert c.value == 8
    assert c.compare_and_swap(5, 99) == 8  # no swap: expected mismatch
    assert c.value == 8


def test_ops_counted_for_contention():
    c = AtomicCounter()
    for _ in range(7):
        c.add(1)
    assert c.ops == 7
    assert c.contention_cycles(30.0) == 210.0
    with pytest.raises(ValidationError):
        c.contention_cycles(-1.0)
