"""The repro.api stability contract: the blessed surface must import,
and the top-level package must re-export it."""

import pytest


def test_blessed_surface_imports():
    from repro.api import (  # noqa: F401
        DATASETS,
        BoundsConfig,
        CuRipplesEngine,
        DirectedGraph,
        EIMEngine,
        Engine,
        EngineResult,
        GIMEngine,
        IMMOptions,
        IMMResult,
        InfluenceQuery,
        InfluenceService,
        QueryOutcome,
        ReproError,
        ResilienceOptions,
        RipplesCPUEngine,
        ServiceClosedError,
        ServiceError,
        ServiceOptions,
        ServiceOverloadedError,
        ValidationError,
        assign_ic_weights,
        assign_lt_weights,
        load_dataset,
        load_edgelist,
        run_imm,
    )


def test_api_all_is_complete():
    import repro.api as api

    for name in api.__all__:
        assert hasattr(api, name), f"repro.api.__all__ lists missing {name}"


def test_top_level_reexports_api():
    import repro
    import repro.api as api

    for name in api.__all__:
        assert getattr(repro, name) is getattr(api, name), name


def test_top_level_all_is_complete():
    import repro

    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ lists missing {name}"


def test_legacy_top_level_names_still_work():
    # pre-facade convenience exports stay importable (compat, not blessed)
    from repro import (  # noqa: F401
        CoverageIndex,
        estimate_spread,
        run_celf_greedy,
        sample_rrr_ic,
        simulate_ic,
    )


def test_service_error_hierarchy():
    from repro.api import (
        ReproError,
        ServiceClosedError,
        ServiceError,
        ServiceOverloadedError,
    )

    assert issubclass(ServiceOverloadedError, ServiceError)
    assert issubclass(ServiceClosedError, ServiceError)
    assert issubclass(ServiceError, ReproError)
    err = ServiceOverloadedError(queue_depth=9, max_queue_depth=8)
    assert err.queue_depth == 9 and err.max_queue_depth == 8
    assert "retry" in str(err)
