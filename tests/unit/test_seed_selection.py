import numpy as np
import pytest

from repro.imm import select_seeds
from repro.rrr import RRRCollection, sample_rrr_ic
from repro.utils.errors import ValidationError


def _coll(sets, n):
    return RRRCollection.from_sets(sets, n=n)


def test_picks_max_count_vertex_first():
    coll = _coll([[0, 1], [1, 2], [1], [3]], n=4)
    res = select_seeds(coll, 1)
    assert res.seeds[0] == 1
    assert res.covered_sets == 3
    assert res.coverage_fraction == pytest.approx(0.75)


def test_marginal_gains_after_removal():
    # after picking 1 (covers 3 sets), vertex 3 covers the remaining set
    coll = _coll([[0, 1], [1, 2], [1], [3]], n=4)
    res = select_seeds(coll, 2)
    assert list(res.seeds) == [1, 3]
    assert list(res.marginal_gains) == [3, 1]
    assert res.covered_sets == 4


def test_counts_are_marginal_not_absolute():
    # vertex 0 appears in 3 sets, but all are covered by vertex 1 too;
    # vertex 2 covers two fresh sets and must be picked second
    coll = _coll(
        [[0, 1], [0, 1], [0, 1], [2, 3], [2]], n=4
    )
    res = select_seeds(coll, 2)
    assert list(res.seeds) == [0, 2]  # 0 wins tie against 1 (lower id)
    assert res.covered_sets == 5


def test_tie_break_lowest_id():
    coll = _coll([[5], [7]], n=8)
    res = select_seeds(coll, 1)
    assert res.seeds[0] == 5


def test_reference_matches_fast_on_random_samples(small_ic_graph):
    coll, _ = sample_rrr_ic(small_ic_graph, 600, rng=3)
    fast = select_seeds(coll, 8, "fast")
    ref = select_seeds(coll, 8, "reference")
    assert np.array_equal(fast.seeds, ref.seeds)
    assert fast.covered_sets == ref.covered_sets
    assert np.array_equal(fast.marginal_gains, ref.marginal_gains)
    assert np.array_equal(fast.stats.sets_scanned, ref.stats.sets_scanned)
    assert np.array_equal(fast.stats.sets_found, ref.stats.sets_found)
    assert np.array_equal(
        fast.stats.elements_decremented, ref.stats.elements_decremented
    )


def test_selection_stats_shapes():
    coll = _coll([[0], [1], [0, 1]], n=3)
    res = select_seeds(coll, 2)
    assert res.stats.sets_scanned.shape == (2,)
    assert res.stats.sets_scanned[0] == 3
    assert res.stats.total_scans() >= 3
    assert res.stats.avg_set_size == pytest.approx(4 / 3)


def test_gain_sequence_non_increasing(small_ic_graph):
    coll, _ = sample_rrr_ic(small_ic_graph, 2000, rng=5)
    res = select_seeds(coll, 12)
    gains = res.marginal_gains
    assert np.all(gains[:-1] >= gains[1:])  # greedy max-coverage is submodular


def test_empty_sets_never_covered():
    coll = RRRCollection.from_sets([[], [], [0]], n=2)
    res = select_seeds(coll, 1)
    assert res.covered_sets == 1


def test_validation():
    coll = _coll([[0]], n=2)
    with pytest.raises(ValidationError):
        select_seeds(coll, 0)
    with pytest.raises(ValidationError):
        select_seeds(coll, 3)
    with pytest.raises(ValidationError):
        select_seeds(coll, 1, strategy="quantum")


def test_k_larger_than_useful_vertices():
    coll = _coll([[0], [0]], n=3)
    res = select_seeds(coll, 3)
    assert res.seeds.size == 3
    assert res.covered_sets == 2


def test_no_duplicate_seeds_after_saturation():
    # regression: once every set is covered, argmax over all-zero counts
    # used to return vertex 0 forever, yielding duplicate seeds
    coll = _coll([[0], [0]], n=4)
    for strategy in ("fast", "reference"):
        res = select_seeds(coll, 4, strategy)
        assert sorted(res.seeds.tolist()) == [0, 1, 2, 3]
        assert len(set(res.seeds.tolist())) == res.seeds.size


def test_no_duplicate_seeds_dense_small_collection():
    # every set contains vertex 1: after picking it, all gains are zero
    coll = _coll([[1, 2], [0, 1], [1]], n=5)
    res = select_seeds(coll, 5)
    assert len(set(res.seeds.tolist())) == 5
    assert res.seeds[0] == 1
    # post-saturation picks proceed by ascending vertex id
    assert sorted(res.seeds.tolist()) == [0, 1, 2, 3, 4]


def test_saturation_marginal_gains_are_zero():
    coll = _coll([[2]], n=3)
    res = select_seeds(coll, 3)
    assert res.seeds[0] == 2
    assert list(res.marginal_gains) == [1, 0, 0]
    assert res.covered_sets == 1


def test_distinct_seeds_on_random_collection(small_ic_graph):
    coll, _ = sample_rrr_ic(small_ic_graph, 400, rng=9)
    res = select_seeds(coll, small_ic_graph.n)  # k == n, maximal stress
    assert len(set(res.seeds.tolist())) == small_ic_graph.n
