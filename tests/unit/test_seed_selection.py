import numpy as np
import pytest

from repro.imm import CoverageIndex, select_seeds
from repro.imm.seed_selection import STRATEGIES
from repro.rrr import RRRCollection, sample_rrr_ic
from repro.utils.errors import ValidationError


def _coll(sets, n):
    return RRRCollection.from_sets(sets, n=n)


def _assert_identical(a, b):
    assert np.array_equal(a.seeds, b.seeds)
    assert a.covered_sets == b.covered_sets
    assert np.array_equal(a.marginal_gains, b.marginal_gains)
    assert np.array_equal(a.stats.sets_scanned, b.stats.sets_scanned)
    assert np.array_equal(a.stats.sets_found, b.stats.sets_found)
    assert np.array_equal(a.stats.elements_decremented, b.stats.elements_decremented)
    assert a.stats.avg_set_size == b.stats.avg_set_size


def test_picks_max_count_vertex_first():
    coll = _coll([[0, 1], [1, 2], [1], [3]], n=4)
    res = select_seeds(coll, 1)
    assert res.seeds[0] == 1
    assert res.covered_sets == 3
    assert res.coverage_fraction == pytest.approx(0.75)


def test_marginal_gains_after_removal():
    # after picking 1 (covers 3 sets), vertex 3 covers the remaining set
    coll = _coll([[0, 1], [1, 2], [1], [3]], n=4)
    res = select_seeds(coll, 2)
    assert list(res.seeds) == [1, 3]
    assert list(res.marginal_gains) == [3, 1]
    assert res.covered_sets == 4


def test_counts_are_marginal_not_absolute():
    # vertex 0 appears in 3 sets, but all are covered by vertex 1 too;
    # vertex 2 covers two fresh sets and must be picked second
    coll = _coll(
        [[0, 1], [0, 1], [0, 1], [2, 3], [2]], n=4
    )
    res = select_seeds(coll, 2)
    assert list(res.seeds) == [0, 2]  # 0 wins tie against 1 (lower id)
    assert res.covered_sets == 5


def test_tie_break_lowest_id():
    coll = _coll([[5], [7]], n=8)
    for strategy in STRATEGIES:
        res = select_seeds(coll, 1, strategy)
        assert res.seeds[0] == 5


def test_lazy_tie_break_after_decrements():
    # vertices 2 and 5 end round 2 tied; the heap must surface 2 first
    # even though 5's stale entry ranked higher before the decrement
    coll = _coll([[0, 5], [0, 5], [0, 2], [2], [5]], n=6)
    for strategy in STRATEGIES:
        res = select_seeds(coll, 2, strategy)
        assert list(res.seeds) == [0, 2], strategy


def test_all_strategies_identical_on_random_samples(small_ic_graph):
    coll, _ = sample_rrr_ic(small_ic_graph, 600, rng=3)
    fast = select_seeds(coll, 8, "fast")
    for other in ("lazy", "reference"):
        _assert_identical(fast, select_seeds(coll, 8, other))


def test_lazy_with_index_matches_fast(small_ic_graph):
    coll, _ = sample_rrr_ic(small_ic_graph, 500, rng=7)
    index = CoverageIndex.build(coll)
    fast = select_seeds(coll, 10, "fast")
    _assert_identical(fast, select_seeds(coll, 10, "fast", index=index))
    _assert_identical(fast, select_seeds(coll, 10, "lazy", index=index))


def test_index_over_longer_stream_serves_prefix(small_ic_graph):
    coll, _ = sample_rrr_ic(small_ic_graph, 500, rng=8)
    index = CoverageIndex.build(coll)  # covers all 500 sets
    for num_sets in (1, 137, 499):
        prefix = coll.prefix(num_sets)
        plain = select_seeds(prefix, 5)
        _assert_identical(plain, select_seeds(prefix, 5, "fast", index=index))
        _assert_identical(plain, select_seeds(prefix, 5, "lazy", index=index))


def test_stale_index_rejected(small_ic_graph):
    coll, _ = sample_rrr_ic(small_ic_graph, 100, rng=9)
    index = CoverageIndex.build(coll.prefix(40))
    with pytest.raises(ValidationError):
        select_seeds(coll, 3, index=index)  # index is behind the collection
    other = CoverageIndex(coll.n + 1)
    with pytest.raises(ValidationError):
        select_seeds(coll, 3, index=other)


def test_selection_stats_shapes():
    coll = _coll([[0], [1], [0, 1]], n=3)
    res = select_seeds(coll, 2)
    assert res.stats.sets_scanned.shape == (2,)
    assert res.stats.sets_scanned[0] == 3
    assert res.stats.total_scans() >= 3
    assert res.stats.avg_set_size == pytest.approx(4 / 3)


def test_gain_sequence_non_increasing(small_ic_graph):
    coll, _ = sample_rrr_ic(small_ic_graph, 2000, rng=5)
    res = select_seeds(coll, 12)
    gains = res.marginal_gains
    assert np.all(gains[:-1] >= gains[1:])  # greedy max-coverage is submodular


def test_empty_sets_never_covered():
    coll = RRRCollection.from_sets([[], [], [0]], n=2)
    res = select_seeds(coll, 1)
    assert res.covered_sets == 1


def test_validation():
    coll = _coll([[0]], n=2)
    with pytest.raises(ValidationError):
        select_seeds(coll, 0)
    with pytest.raises(ValidationError):
        select_seeds(coll, 3)
    with pytest.raises(ValidationError):
        select_seeds(coll, 1, strategy="quantum")


def test_k_larger_than_useful_vertices():
    coll = _coll([[0], [0]], n=3)
    res = select_seeds(coll, 3)
    assert res.seeds.size == 3
    assert res.covered_sets == 2


def test_no_duplicate_seeds_after_saturation():
    # regression: once every set is covered, argmax over all-zero counts
    # used to return vertex 0 forever, yielding duplicate seeds
    coll = _coll([[0], [0]], n=4)
    for strategy in STRATEGIES:
        res = select_seeds(coll, 4, strategy)
        assert sorted(res.seeds.tolist()) == [0, 1, 2, 3]
        assert len(set(res.seeds.tolist())) == res.seeds.size


def test_no_duplicate_seeds_dense_small_collection():
    # every set contains vertex 1: after picking it, all gains are zero
    coll = _coll([[1, 2], [0, 1], [1]], n=5)
    res = select_seeds(coll, 5)
    assert len(set(res.seeds.tolist())) == 5
    assert res.seeds[0] == 1
    # post-saturation picks proceed by ascending vertex id
    assert sorted(res.seeds.tolist()) == [0, 1, 2, 3, 4]


def test_saturation_marginal_gains_are_zero():
    coll = _coll([[2]], n=3)
    res = select_seeds(coll, 3)
    assert res.seeds[0] == 2
    assert list(res.marginal_gains) == [1, 0, 0]
    assert res.covered_sets == 1


def test_distinct_seeds_on_random_collection(small_ic_graph):
    coll, _ = sample_rrr_ic(small_ic_graph, 400, rng=9)
    res = select_seeds(coll, small_ic_graph.n)  # k == n, maximal stress
    assert len(set(res.seeds.tolist())) == small_ic_graph.n


def test_lazy_distinct_seeds_k_equals_n(small_ic_graph):
    coll, _ = sample_rrr_ic(small_ic_graph, 400, rng=9)
    fast = select_seeds(coll, small_ic_graph.n, "fast")
    lazy = select_seeds(coll, small_ic_graph.n, "lazy")
    _assert_identical(fast, lazy)


def test_lazy_publishes_pop_counters(small_ic_graph):
    from repro import obs

    coll, _ = sample_rrr_ic(small_ic_graph, 300, rng=10)
    with obs.profiled() as handle:
        select_seeds(coll, 6, "lazy")
    counters = handle.report().counters
    # one pop per selected seed at minimum; re-evals are heap repushes
    assert counters.get("selection.lazy.pops", 0) >= 6
    assert counters.get("selection.lazy.pops", 0) == (
        6 + counters.get("selection.lazy.reevals", 0)
    )


def test_index_counters_distinguish_build_from_reuse(small_ic_graph):
    from repro import obs

    coll, _ = sample_rrr_ic(small_ic_graph, 200, rng=11)
    with obs.profiled() as handle:
        select_seeds(coll, 4)  # no index passed: builds a throwaway one
    built = handle.report().counters.get("selection.index.built_elements", 0)
    assert built == coll.total_elements

    index = CoverageIndex.build(coll)
    with obs.profiled() as handle:
        select_seeds(coll, 4, index=index)
    counters = handle.report().counters
    assert counters.get("selection.index.built_elements", 0) == 0
    assert counters.get("selection.index.served_elements", 0) == coll.total_elements
