import numpy as np
import pytest

from repro.graphs import DirectedGraph, assign_lt_weights
from repro.rrr import sample_rrr_lt
from repro.rrr.sampler_lt import _build_selection_index
from repro.utils.errors import ValidationError


def test_requires_weights(line_graph):
    with pytest.raises(ValidationError):
        sample_rrr_lt(line_graph, 10)


def test_invariants(small_lt_graph):
    coll, trace = sample_rrr_lt(small_lt_graph, 400, rng=1)
    assert coll.num_sets == 400
    for i in (0, 123, 399):
        s = coll.set_at(i)
        assert np.all(np.diff(s) > 0)
        assert coll.sources[i] in s


def test_selection_index_globally_sorted(small_lt_graph):
    idx = _build_selection_index(small_lt_graph)
    assert np.all(np.diff(idx) >= 0)


def test_selection_index_handles_zero_weight_segments():
    g = DirectedGraph.from_edges([0, 1], [2, 2], n=3, weights=[0.0, 0.0])
    idx = _build_selection_index(g)
    assert np.all(np.diff(idx) >= 0)


def test_walk_follows_unique_in_neighbor():
    # chain 0 -> 1 -> 2 with weight 1: reverse walk from 2 visits all
    g = DirectedGraph.from_edges([0, 1], [1, 2], n=3, weights=[1.0, 1.0])
    coll, _ = sample_rrr_lt(g, 200, rng=3)
    for i in range(coll.num_sets):
        src = coll.sources[i]
        assert list(coll.set_at(i)) == list(range(src + 1))


def test_walk_stops_on_low_total_weight():
    # single in-edge with weight 0.2: P(walk continues) = 0.2
    g = DirectedGraph.from_edges([0], [1], n=2, weights=[0.2])
    coll, _ = sample_rrr_lt(g, 4000, rng=4)
    from_source_1 = coll.sources == 1
    extended = np.asarray(
        [coll.set_at(i).size == 2 for i in np.flatnonzero(from_source_1)]
    )
    assert 0.16 < extended.mean() < 0.24


def test_neighbor_choice_proportional_to_weight():
    # vertex 2 has in-neighbors 0 (w=0.75) and 1 (w=0.25)
    g = DirectedGraph.from_edges([0, 1], [2, 2], n=3, weights=[0.75, 0.25])
    coll, _ = sample_rrr_lt(g, 6000, rng=5)
    picked0 = picked1 = 0
    for i in range(coll.num_sets):
        if coll.sources[i] != 2:
            continue
        s = set(coll.set_at(i).tolist())
        if 0 in s:
            picked0 += 1
        if 1 in s:
            picked1 += 1
    total = picked0 + picked1
    assert total > 500
    assert 0.70 < picked0 / total < 0.80


def test_lt_rrr_matches_forward_influence(small_lt_graph):
    from repro.diffusion import estimate_spread

    coll, _ = sample_rrr_lt(small_lt_graph, 30_000, rng=6)
    v = int(np.argmax(coll.counts))
    ris = small_lt_graph.n * coll.counts[v] / coll.num_sets
    mc = estimate_spread(small_lt_graph, [v], "LT", 1500, rng=7)
    assert abs(ris - mc) / max(mc, 1.0) < 0.15


def test_source_elimination(small_lt_graph):
    coll, trace = sample_rrr_lt(small_lt_graph, 300, rng=8, eliminate_sources=True)
    assert coll.num_sets == 300
    assert coll.empty_fraction() == 0.0
    for i in range(0, 300, 29):
        assert coll.sources[i] not in coll.set_at(i)


def test_deterministic_by_seed(small_lt_graph):
    a, _ = sample_rrr_lt(small_lt_graph, 150, rng=11)
    b, _ = sample_rrr_lt(small_lt_graph, 150, rng=11)
    assert np.array_equal(a.flat, b.flat)
