import numpy as np
import pytest

from repro.graphs.generators import (
    _powerlaw_degree_sequence,
    erdos_renyi_directed,
    powerlaw_cluster_directed,
    powerlaw_configuration,
)
from repro.utils.errors import ValidationError


def test_degree_sequence_hits_target_sum():
    rng = np.random.default_rng(1)
    deg = _powerlaw_degree_sequence(500, 3000, 2.2, rng)
    assert deg.sum() == 3000
    assert deg.min() >= 0


def test_degree_sequence_zero_fraction():
    rng = np.random.default_rng(1)
    deg = _powerlaw_degree_sequence(1000, 2000, 2.2, rng, zero_fraction=0.5)
    assert (deg == 0).mean() >= 0.45


def test_powerlaw_configuration_basic():
    g = powerlaw_configuration(500, 3000, rng=3)
    assert g.n == 500
    assert 0.8 * 3000 <= g.m <= 3000  # dedup/self-loop losses bounded
    # no self loops
    dst = np.repeat(np.arange(g.n), g.in_degrees())
    assert not np.any(g.indices == dst)


def test_powerlaw_configuration_heavy_tail():
    g = powerlaw_configuration(2000, 16000, exponent_in=2.0, rng=5)
    deg = g.in_degrees()
    assert deg.max() >= 10 * max(deg.mean(), 1)


def test_powerlaw_bidirectional_symmetry():
    g = powerlaw_configuration(300, 900, rng=7, bidirectional=True)
    dst = np.repeat(np.arange(g.n), g.in_degrees())
    edges = set(zip(g.indices.tolist(), dst.tolist()))
    assert all((b, a) in edges for a, b in edges)


def test_erdos_renyi_counts():
    g = erdos_renyi_directed(400, 2000, rng=2)
    assert g.n == 400
    assert g.m >= 1900  # dedup can trim slightly


def test_erdos_renyi_narrow_degrees():
    g = erdos_renyi_directed(2000, 20000, rng=4)
    deg = g.in_degrees()
    # Poisson-like: max degree within a few sigma of the mean
    assert deg.max() < deg.mean() + 8 * np.sqrt(deg.mean())


def test_powerlaw_cluster_has_hubs():
    g = powerlaw_cluster_directed(1000, 8000, rng=6)
    deg = np.sort(g.in_degrees())[::-1]
    assert deg[:10].sum() > 0.1 * g.m  # top vertices absorb real in-share


def test_generator_validation():
    with pytest.raises(ValidationError):
        powerlaw_configuration(1, 10)
    with pytest.raises(ValidationError):
        erdos_renyi_directed(1, 10)
    rng = np.random.default_rng(0)
    with pytest.raises(ValidationError):
        _powerlaw_degree_sequence(10, 20, 0.9, rng)


def test_generators_deterministic_by_seed():
    a = powerlaw_configuration(300, 1500, rng=11)
    b = powerlaw_configuration(300, 1500, rng=11)
    assert np.array_equal(a.indices, b.indices)
    assert np.array_equal(a.indptr, b.indptr)
