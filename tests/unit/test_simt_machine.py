import numpy as np
import pytest

from repro.gpu.simt.machine import DeviceArrays, OpCounts, WarpContext
from repro.utils.errors import ValidationError


def test_op_counts_merge():
    a = OpCounts(global_reads=1, atomics=2)
    b = OpCounts(global_reads=3, rng_draws=5)
    merged = a.merged(b)
    assert merged.global_reads == 4
    assert merged.atomics == 2 and merged.rng_draws == 5


def test_device_arrays_growth():
    dev = DeviceArrays(n=10, theta=2, queue_capacity=10)
    initial = dev.R.size
    dev.ensure_r_capacity(initial * 3)
    assert dev.R.size >= initial * 3
    with pytest.raises(ValidationError):
        DeviceArrays(n=0, theta=1, queue_capacity=4)


def test_warp_shfl_up_semantics():
    ctx = WarpContext(8, rng=0)
    values = np.arange(8.0)
    shifted = ctx.shfl_up(values, 2)
    assert list(shifted[:2]) == [0.0, 1.0]  # low lanes keep their own
    assert list(shifted[2:]) == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]


def test_warp_inclusive_scan_equals_cumsum():
    ctx = WarpContext(32, rng=0)
    values = np.random.default_rng(1).random(32)
    scanned = ctx.inclusive_scan(values)
    assert np.allclose(scanned, np.cumsum(values))
    assert ctx.ops.shuffles == 5  # log2(32) rounds


def test_ballot_mask():
    ctx = WarpContext(8, rng=0)
    mask = ctx.ballot(np.array([1, 0, 0, 1, 0, 0, 0, 1], dtype=bool))
    assert mask == 0b10001001


def test_atomic_add_scalar_returns_old():
    class Obj:
        offset = 10

    ctx = WarpContext(4, rng=0)
    obj = Obj()
    assert ctx.atomic_add_scalar(obj, "offset", 5) == 10
    assert obj.offset == 15
    assert ctx.ops.atomics == 1


def test_atomic_enqueue_serializes_in_lane_order():
    class Obj:
        tail = 0

    ctx = WarpContext(4, rng=0)
    queue = np.zeros(8, dtype=np.int64)
    values = np.array([10, 20, 30, 40])
    active = np.array([True, False, True, True])
    obj = Obj()
    ctx.atomic_enqueue(active, values, queue, obj, "tail")
    assert obj.tail == 3
    assert list(queue[:3]) == [10, 30, 40]


def test_atomic_add_array():
    ctx = WarpContext(4, rng=0)
    arr = np.zeros(5, dtype=np.int64)
    ctx.atomic_add_array(arr, np.array([1, 1, 3, 4]),
                         np.array([True, True, True, False]), 1)
    assert list(arr) == [0, 2, 0, 1, 0]
    assert ctx.ops.atomics == 3


def test_lane_random_counts_whole_warp():
    ctx = WarpContext(32, rng=0)
    ctx.lane_random(np.zeros(32, dtype=bool))
    assert ctx.ops.rng_draws == 32  # inactive lanes still issue


def test_warp_size_validation():
    with pytest.raises(ValidationError):
        WarpContext(0)
