import numpy as np
import pytest

from repro.encoding.bitpack import PackedArray, pack, required_bits, unpack_words
from repro.utils.errors import ValidationError


def test_required_bits_examples():
    assert required_bits(123) == 7  # the paper's Fig. 1 value
    assert required_bits(0) == 1
    assert required_bits(1) == 1
    assert required_bits(127) == 7
    assert required_bits(128) == 8  # where the paper's ceil(log2) formula slips
    assert required_bits(2**31 - 1) == 31


def test_required_bits_rejects_negative():
    with pytest.raises(ValidationError):
        required_bits(-1)


def test_paper_figure1():
    """Fig. 1: [1, 123, 2, 83, 115] -> 7 bits/elem, 160 bits -> 64 bits."""
    values = [1, 123, 2, 83, 115]
    pa = pack(values, container_bits=32)
    assert pa.n_bits == 7
    assert pa.nbytes_raw == 20  # 160 bits
    assert pa.nbytes_packed == 8  # two 32-bit containers
    assert list(pa.unpack()) == values


def test_roundtrip_spanning_boundaries():
    values = list(range(100))
    for nbits in (7, 11, 13, 17, 31, 32):
        pa = pack(values, n_bits=nbits, container_bits=32)
        assert list(pa.unpack()) == values, nbits


def test_roundtrip_64bit_containers():
    values = [0, 1, 2**30, 5, 123456789]
    pa = pack(values, container_bits=64)
    assert list(pa.unpack()) == values


def test_nbits_too_small_rejected():
    with pytest.raises(ValidationError):
        pack([256], n_bits=8)


def test_negative_values_rejected():
    with pytest.raises(ValidationError):
        pack([-1])


def test_invalid_container_rejected():
    with pytest.raises(ValidationError):
        pack([1], container_bits=16)


def test_empty_array():
    pa = pack([])
    assert len(pa) == 0
    assert pa.unpack().size == 0
    assert pa.nbytes_packed == 0
    assert pa.savings_fraction == 0.0


def test_gather_random_access():
    values = np.arange(50) * 3
    pa = pack(values)
    idx = np.array([0, 49, 7, 7, 13])
    assert list(pa.gather(idx)) == [0, 147, 21, 21, 39]


def test_gather_out_of_range():
    pa = pack([1, 2, 3])
    with pytest.raises(ValidationError):
        pa.gather(np.array([3]))


def test_getitem_int_and_slice():
    pa = pack([10, 20, 30, 40])
    assert pa[1] == 20
    assert pa[-1] == 40
    assert list(pa[1:3]) == [20, 30]
    with pytest.raises(IndexError):
        pa[4]


def test_set_element_within_single_container():
    pa = pack([1, 2, 3, 4], n_bits=8)
    pa.set_element(2, 200)
    assert list(pa.unpack()) == [1, 2, 200, 4]


def test_set_element_spanning_containers():
    # 7-bit fields: element 4 occupies bits 28..34, spanning two words
    pa = pack([0, 0, 0, 0, 0, 0], n_bits=7)
    pa.set_element(4, 127)
    assert pa[4] == 127
    pa.set_element(4, 1)
    assert list(pa.unpack()) == [0, 0, 0, 0, 1, 0]


def test_set_element_validates():
    pa = pack([1, 2], n_bits=4)
    with pytest.raises(ValidationError):
        pa.set_element(0, 16)
    with pytest.raises(IndexError):
        pa.set_element(5, 0)


def test_savings_fraction():
    pa = pack(np.arange(1000), n_bits=10)
    # 10 bits vs 32 bits -> ~68.75% saved (modulo container rounding)
    assert 0.67 < pa.savings_fraction < 0.70


def test_unpack_words_matches_unpack():
    values = [5, 9, 200, 4]
    pa = pack(values, n_bits=9)
    assert list(unpack_words(pa.words, 9, 4, 32)) == values
