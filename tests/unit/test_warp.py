import numpy as np
import pytest

from repro.gpu.warp import (
    lt_select_activating_lane,
    warp_ballot,
    warp_inclusive_scan,
    warp_reduce_sum,
)
from repro.utils.errors import ValidationError


def test_inclusive_scan_matches_cumsum():
    values = np.arange(1.0, 33.0)
    scanned, rounds = warp_inclusive_scan(values)
    assert np.allclose(scanned, np.cumsum(values))
    assert rounds == 5  # log2(32) shuffle rounds, as §3.3 describes


def test_scan_partial_warp():
    scanned, rounds = warp_inclusive_scan(np.array([2.0, 3.0, 4.0]))
    assert np.allclose(scanned, [2.0, 5.0, 9.0])
    assert rounds == 2


def test_scan_rejects_oversized():
    with pytest.raises(ValidationError):
        warp_inclusive_scan(np.ones(33))


def test_reduce_sum():
    total, rounds = warp_reduce_sum(np.ones(32))
    assert total == 32.0
    assert rounds == 5
    assert warp_reduce_sum(np.array([]))[0] == 0.0


def test_ballot():
    mask = warp_ballot(np.array([True, False, True, True]))
    assert mask == 0b1101
    with pytest.raises(ValidationError):
        warp_ballot(np.ones(40, dtype=bool))


def test_lt_lane_selection_first_crossing():
    weights = np.array([0.2, 0.3, 0.4, 0.1])
    # inclusive sums: 0.2 0.5 0.9 1.0
    lane, rounds = lt_select_activating_lane(weights, tau=0.45)
    assert lane == 1
    lane, _ = lt_select_activating_lane(weights, tau=0.95)
    assert lane == 3
    lane, _ = lt_select_activating_lane(weights, tau=0.1)
    assert lane == 0


def test_lt_lane_selection_no_crossing():
    lane, _ = lt_select_activating_lane(np.array([0.1, 0.2]), tau=0.9)
    assert lane == -1


def test_lt_lane_matches_searchsorted_semantics():
    rng = np.random.default_rng(5)
    for _ in range(50):
        w = rng.random(rng.integers(1, 33))
        w /= w.sum() * rng.uniform(1.0, 2.0)  # total <= 1
        tau = rng.random()
        lane, _ = lt_select_activating_lane(w, tau)
        cum = np.cumsum(w)
        expected = int(np.searchsorted(cum, tau)) if tau <= cum[-1] else -1
        if expected == len(w):
            expected = -1
        assert lane == expected
