import numpy as np
import pytest

from repro.diffusion import simulate_lt
from repro.graphs import DirectedGraph, assign_lt_weights
from repro.utils.errors import ValidationError


def test_threshold_semantics_deterministic():
    # 0 -> 2 (w=0.6), 1 -> 2 (w=0.4); threshold 0.5 needs vertex 0 alone,
    # threshold 0.9 needs both
    g = DirectedGraph.from_edges([0, 1], [2, 2], n=3, weights=[0.6, 0.4])
    thresholds = np.array([0.5, 0.5, 0.5])
    assert simulate_lt(g, [0], thresholds=thresholds)[2]
    assert not simulate_lt(g, [1], thresholds=thresholds)[2]
    thresholds_high = np.array([0.9, 0.9, 0.9])
    assert not simulate_lt(g, [0], thresholds=thresholds_high)[2]
    assert simulate_lt(g, [0, 1], thresholds=thresholds_high)[2]


def test_multi_step_propagation():
    # chain with full weights and low thresholds cascades to the end
    g = DirectedGraph.from_edges([0, 1, 2], [1, 2, 3], n=4, weights=[1.0, 1.0, 1.0])
    active = simulate_lt(g, [0], thresholds=np.full(4, 0.8))
    assert active.all()


def test_weight_accumulation_across_steps():
    # 0 -> 2 (0.5) and 1 -> 2 (0.5); 0 -> 1 (1.0); threshold(2)=0.9:
    # step 1 activates 1 (via 0), step 2 pushes 2 over with 0.5+0.5
    g = DirectedGraph.from_edges([0, 0, 1], [1, 2, 2], n=3,
                                 weights=[1.0, 0.5, 0.5])
    active = simulate_lt(g, [0], thresholds=np.array([0.1, 0.9, 0.9]))
    assert active.all()


def test_empirical_activation_rate():
    # single edge weight 0.4: P(activate) = P(tau <= 0.4) = 0.4
    g = DirectedGraph.from_edges([0], [1], n=2, weights=[0.4])
    rng = np.random.default_rng(7)
    hits = sum(simulate_lt(g, [0], rng)[1] for _ in range(4000))
    assert 0.36 < hits / 4000 < 0.44


def test_requires_weights(line_graph):
    with pytest.raises(ValidationError):
        simulate_lt(line_graph, [0])


def test_threshold_shape_validated(small_lt_graph):
    with pytest.raises(ValidationError):
        simulate_lt(small_lt_graph, [0], thresholds=np.array([0.5]))


def test_seeds_active_and_deterministic(small_lt_graph):
    a = simulate_lt(small_lt_graph, [3, 4], rng=2)
    b = simulate_lt(small_lt_graph, [3, 4], rng=2)
    assert a[3] and a[4]
    assert np.array_equal(a, b)
