import pytest

from repro.graphs.datasets import DATASETS, MIN_VERTICES, get_dataset, load_dataset
from repro.utils.errors import ValidationError


def test_registry_has_sixteen_paper_datasets():
    assert len(DATASETS) == 16
    assert list(DATASETS)[:3] == ["WV", "PG", "SE"]
    assert "SL" in DATASETS and "CO" in DATASETS


def test_lookup_case_insensitive():
    assert get_dataset("wv").name == "wiki-Vote"


def test_unknown_code_rejected():
    with pytest.raises(ValidationError):
        get_dataset("XX")


def test_sizes_at_scales():
    spec = get_dataset("SL")
    n_tiny, m_tiny = spec.sizes_at("tiny")
    n_small, _ = spec.sizes_at("small")
    n_paper, m_paper = spec.sizes_at("paper")
    assert n_tiny < n_small < n_paper
    assert n_paper == spec.paper_vertices and m_paper == spec.paper_edges
    # average degree preserved within rounding
    assert abs(m_tiny / n_tiny - spec.avg_degree()) < 1.0


def test_min_vertices_floor():
    spec = get_dataset("WV")  # paper n=8298, /1000 would be 8
    n, _ = spec.sizes_at("tiny")
    assert n == MIN_VERTICES


def test_unknown_scale_rejected():
    with pytest.raises(ValidationError):
        get_dataset("WV").sizes_at("huge")


def test_generate_is_deterministic():
    a = load_dataset("SE", "tiny", rng=9)
    b = load_dataset("SE", "tiny", rng=9)
    assert a.n == b.n and a.m == b.m


@pytest.mark.parametrize("code", list(DATASETS))
def test_every_dataset_generates_at_tiny(code):
    g = load_dataset(code, "tiny", rng=1)
    spec = get_dataset(code)
    n_target, m_target = spec.sizes_at("tiny")
    assert g.n == n_target
    assert g.m > 0.5 * m_target  # generators lose some edges to dedup


def test_ee_has_high_zero_in_fraction():
    g = load_dataset("EE", "tiny", rng=1)
    assert (g.in_degrees() == 0).mean() > 0.4


def test_undirected_datasets_are_symmetric():
    import numpy as np

    g = load_dataset("CA", "tiny", rng=1)
    dst = np.repeat(np.arange(g.n), g.in_degrees())
    edges = set(zip(g.indices.tolist(), dst.tolist()))
    assert all((b, a) in edges for a, b in edges)
