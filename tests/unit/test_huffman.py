import numpy as np
import pytest

from repro.encoding.huffman import (
    HuffmanCode,
    build_code,
    huffman_decode,
    huffman_encode,
)
from repro.utils.errors import ValidationError


def test_roundtrip_small():
    values = [1, 123, 2, 83, 115, 1, 1, 2]
    enc = huffman_encode(values)
    assert list(huffman_decode(enc)) == values


def test_roundtrip_skewed_distribution():
    rng = np.random.default_rng(3)
    values = rng.zipf(1.8, size=3000)
    values = np.minimum(values, 500)
    enc = huffman_encode(values)
    assert np.array_equal(huffman_decode(enc), values)


def test_single_symbol_stream():
    enc = huffman_encode([7, 7, 7, 7])
    assert enc.total_bits == 4  # 1 bit per symbol
    assert list(huffman_decode(enc)) == [7, 7, 7, 7]


def test_kraft_inequality_and_prefix_freedom():
    rng = np.random.default_rng(5)
    values = rng.integers(0, 40, size=2000)
    code = build_code(values)
    assert np.sum(2.0 ** -code.lengths) <= 1.0 + 1e-12
    # prefix-free: no code is a prefix of a longer one
    entries = sorted(zip(code.lengths.tolist(), code.codes.tolist()))
    for i, (la, ca) in enumerate(entries):
        for lb, cb in entries[i + 1 :]:
            if lb > la:
                assert (cb >> (lb - la)) != ca


def test_compression_beats_fixed_width_on_skew():
    """Heavily skewed symbols: Huffman must beat 32-bit and approach the
    entropy, which is the HBMax argument §3.1 cites."""
    rng = np.random.default_rng(6)
    values = np.where(rng.random(5000) < 0.9, 3, rng.integers(0, 1000, 5000))
    enc = huffman_encode(values)
    assert enc.nbytes_payload < 4 * values.size / 4  # > 4x better than raw


def test_frequent_symbols_get_shorter_codes():
    values = [0] * 100 + [1] * 10 + [2]
    code = build_code(np.asarray(values))
    by_symbol = dict(zip(code.symbols.tolist(), code.lengths.tolist()))
    assert by_symbol[0] <= by_symbol[1] <= by_symbol[2]


def test_code_of_rejects_unknown_symbol():
    code = build_code(np.asarray([1, 2, 3]))
    with pytest.raises(ValidationError):
        code.code_of(np.asarray([4]))


def test_empty_and_negative_rejected():
    with pytest.raises(ValidationError):
        huffman_encode([])
    with pytest.raises(ValidationError):
        build_code(np.asarray([-1]))


def test_shared_codebook_across_streams():
    rng = np.random.default_rng(8)
    train = rng.integers(0, 30, size=1000)
    code = build_code(train)
    chunk = rng.integers(0, 30, size=200)
    enc = huffman_encode(chunk, code=code)
    assert np.array_equal(huffman_decode(enc), chunk)
