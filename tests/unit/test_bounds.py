import math

import pytest

from repro.imm.bounds import (
    BoundsConfig,
    adjusted_ell,
    lambda_prime,
    lambda_star,
    log_binomial,
)
from repro.utils.errors import ValidationError


def test_log_binomial_exact_small_cases():
    assert log_binomial(5, 2) == pytest.approx(math.log(10))
    assert log_binomial(10, 0) == pytest.approx(0.0)
    assert log_binomial(10, 10) == pytest.approx(0.0)


def test_log_binomial_symmetry():
    assert log_binomial(100, 30) == pytest.approx(log_binomial(100, 70))


def test_log_binomial_rejects_invalid():
    with pytest.raises(ValidationError):
        log_binomial(5, 6)
    with pytest.raises(ValidationError):
        log_binomial(5, -1)


def test_adjusted_ell_inflates():
    assert adjusted_ell(1000, 1.0) > 1.0
    assert adjusted_ell(10**6, 1.0) < adjusted_ell(100, 1.0)  # shrinks with n


def test_lambda_star_monotone_in_epsilon():
    n, k = 10_000, 50
    assert lambda_star(n, k, 0.05, 1.0) > lambda_star(n, k, 0.1, 1.0)
    # quadratic dependence on 1/eps
    ratio = lambda_star(n, k, 0.05, 1.0) / lambda_star(n, k, 0.1, 1.0)
    assert ratio == pytest.approx(4.0, rel=1e-9)


def test_lambda_star_monotone_in_k():
    n = 10_000
    assert lambda_star(n, 100, 0.1, 1.0) > lambda_star(n, 10, 0.1, 1.0)


def test_lambda_prime_monotone():
    n, k = 10_000, 50
    assert lambda_prime(n, k, 0.05, 1.0) > lambda_prime(n, k, 0.2, 1.0)
    with pytest.raises(ValidationError):
        lambda_prime(n, k, 0.0, 1.0)
    with pytest.raises(ValidationError):
        lambda_star(n, k, 0.0, 1.0)


def test_bounds_config_cap():
    cfg = BoundsConfig(theta_scale=0.5, max_theta=100)
    assert cfg.cap(500.0) == 100
    assert cfg.cap(150.0) == 75
    assert cfg.cap(0.1) == 1


def test_bounds_config_validation():
    with pytest.raises(ValidationError):
        BoundsConfig(ell=0)
    with pytest.raises(ValidationError):
        BoundsConfig(theta_scale=0)
    with pytest.raises(ValidationError):
        BoundsConfig(max_theta=0)
