"""Concurrency hammer for the serving tier.

N client threads fire a mixed burst of queries at one
:class:`~repro.service.service.InfluenceService` and every answer must
be bit-identical to a serial :func:`~repro.imm.imm.run_imm` against a
fresh same-identity store — under clean conditions AND with
``REPRO_FAULTS`` crashing sampler workers underneath the service.
"""

import os
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.imm.imm import run_imm
from repro.imm.options import IMMOptions
from repro.resilience import ResilienceOptions
from repro.resilience.faults import ENV_VAR
from repro.rrr.parallel import shutdown_pools
from repro.rrr.store import RRRStore
from repro.service import InfluenceQuery, InfluenceService, ServiceOptions

CHUNK_SETS = 256
WORKLOAD = [(k, eps) for k in (2, 4, 6, 8) for eps in (0.3, 0.35)]


@pytest.fixture(autouse=True)
def _no_ambient_faults(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    yield
    shutdown_pools()


def _serial_answers(graph, options):
    """Ground truth: each cell against a fresh store, one at a time."""
    answers = {}
    for k, eps in WORKLOAD:
        store = RRRStore(
            graph,
            model=options.model,
            eliminate_sources=options.eliminate_sources,
            n_jobs=options.n_jobs,
            chunk_sets=CHUNK_SETS,
            batch_size=options.batch_size,
            resilience=options.resilience,
        )
        answers[(k, eps)] = run_imm(graph, k, eps, options=options,
                                    store=store)
        store.close()
    return answers


def _hammer(service, options, repeats=3):
    """Fire the workload ``repeats``x from parallel client threads."""
    queries = [
        InfluenceQuery("g", k=k, epsilon=eps, options=options)
        for k, eps in WORKLOAD
    ] * repeats
    with ThreadPoolExecutor(max_workers=8) as clients:
        outcomes = list(clients.map(service.query, queries))
    return queries, outcomes


def test_hammer_bit_identical_to_serial(small_ic_graph):
    options = IMMOptions()
    expected = _serial_answers(small_ic_graph, options)
    service = InfluenceService(
        ServiceOptions(max_inflight=4, max_queue_depth=256,
                       chunk_sets=CHUNK_SETS)
    )
    service.register_graph("g", small_ic_graph)
    try:
        queries, outcomes = _hammer(service, options)
        for query, outcome in zip(queries, outcomes):
            truth = expected[(query.k, query.epsilon)]
            assert np.array_equal(outcome.seeds, truth.seeds), (
                f"k={query.k} eps={query.epsilon} diverged"
            )
            assert outcome.result.theta == truth.theta
        # one substrate total: every cell shares the stream identity
        assert service.stats()["substrates"] == 1
        # the burst coalesced: far fewer sets sampled than independent runs
        total_sampled = sum(o.sampled_sets for o in outcomes)
        independent = sum(r.theta for r in expected.values()) * 3
        assert total_sampled < independent / 3
    finally:
        service.close()


def test_hammer_bit_identical_under_worker_crashes(
    small_ic_graph, monkeypatch
):
    options = IMMOptions(
        n_jobs=2,
        resilience=ResilienceOptions(backoff_base=0.0),
    )
    expected = _serial_answers(small_ic_graph, options)

    monkeypatch.setenv(ENV_VAR, "crash@1")
    service = InfluenceService(
        ServiceOptions(max_inflight=2, max_queue_depth=256,
                       chunk_sets=CHUNK_SETS)
    )
    service.register_graph("g", small_ic_graph)
    try:
        queries, outcomes = _hammer(service, options, repeats=1)
        for query, outcome in zip(queries, outcomes):
            truth = expected[(query.k, query.epsilon)]
            assert np.array_equal(outcome.seeds, truth.seeds), (
                f"k={query.k} eps={query.epsilon} diverged under faults"
            )
    finally:
        service.close()


def test_hammer_overload_only_sheds_never_corrupts(small_ic_graph):
    """Under a tiny queue some submits bounce; the ones admitted must
    still come back correct, and the service must stay serviceable."""
    from repro.utils.errors import ServiceOverloadedError

    options = IMMOptions()
    service = InfluenceService(
        ServiceOptions(max_inflight=1, max_queue_depth=2,
                       chunk_sets=CHUNK_SETS)
    )
    service.register_graph("g", small_ic_graph)
    try:
        accepted, rejected = [], 0
        lock = threading.Lock()

        def client(idx):
            nonlocal rejected
            query = InfluenceQuery("g", k=2 + idx % 4, epsilon=0.3,
                                   options=options)
            try:
                future = service.submit(query)
            except ServiceOverloadedError:
                with lock:
                    rejected += 1
                return
            with lock:
                accepted.append((query, future))

        with ThreadPoolExecutor(max_workers=16) as clients:
            list(clients.map(client, range(32)))
        assert accepted, "everything was shed"
        for query, future in accepted:
            outcome = future.result(timeout=120)
            assert len(outcome.seeds) == query.k
        # after the storm the service still answers fresh queries
        calm = service.query(
            InfluenceQuery("g", k=3, epsilon=0.3, options=options)
        )
        assert len(calm.seeds) == 3
    finally:
        service.close()
