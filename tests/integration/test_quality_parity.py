"""The paper's §4.1 quality claim: all three engines produce seed sets of
the same expected influence (they share the IMM core; eIM's source
elimination must not degrade quality)."""

import numpy as np
import pytest

from repro.diffusion import estimate_spread
from repro.experiments import ExperimentConfig
from repro.experiments.runner import compare_engines


@pytest.fixture(scope="module")
def cfg():
    return ExperimentConfig(datasets=("WV", "SE"), sweep_theta_scale=0.2)


@pytest.mark.parametrize("code", ["WV", "SE"])
def test_ic_quality_parity(cfg, code):
    row = compare_engines(code, 10, 0.2, "IC", cfg, bounds=cfg.bounds(sweep=True))
    graph = cfg.graph(code, "IC")
    sp_eim = estimate_spread(graph, row.eim.seeds, "IC", 600, rng=1)
    sp_gim = estimate_spread(graph, row.gim.seeds, "IC", 600, rng=1)
    assert sp_eim > 0.9 * sp_gim
    assert sp_gim > 0.9 * sp_eim


def test_lt_quality_parity(cfg):
    row = compare_engines("WV", 10, 0.25, "LT", cfg, bounds=cfg.bounds(sweep=True))
    graph = cfg.graph("WV", "LT")
    sp_eim = estimate_spread(graph, row.eim.seeds, "LT", 600, rng=2)
    sp_gim = estimate_spread(graph, row.gim.seeds, "LT", 600, rng=2)
    assert sp_eim > 0.9 * sp_gim
    assert sp_gim > 0.9 * sp_eim


def test_seeds_beat_random_and_degree_baselines(cfg):
    """Sanity anchor: IMM seeds must beat random seeds clearly and match
    or beat a high-out-degree heuristic."""
    graph = cfg.graph("WV", "IC")
    row = compare_engines("WV", 10, 0.2, "IC", cfg, bounds=cfg.bounds(sweep=True))
    rng = np.random.default_rng(3)
    random_seeds = rng.choice(graph.n, size=10, replace=False)
    degree_seeds = np.argsort(graph.out_degrees())[-10:]
    sp_imm = estimate_spread(graph, row.eim.seeds, "IC", 800, rng=4)
    sp_random = estimate_spread(graph, random_seeds, "IC", 800, rng=4)
    sp_degree = estimate_spread(graph, degree_seeds, "IC", 800, rng=4)
    assert sp_imm > 1.5 * sp_random
    assert sp_imm > 0.95 * sp_degree
