"""RIS identity: for any vertex set S, n * P(S hits a random RRR set)
equals E[I(S)] — the theorem both RIS and IMM stand on.  Verified by
cross-checking reverse sampling against forward Monte-Carlo simulation
for both diffusion models."""

import numpy as np
import pytest

from repro.diffusion import estimate_spread
from repro.graphs import assign_ic_weights, assign_lt_weights
from repro.graphs.generators import powerlaw_configuration
from repro.rrr import sample_rrr_ic, sample_rrr_lt


@pytest.fixture(scope="module")
def topology():
    return powerlaw_configuration(400, 2800, rng=77)


@pytest.mark.parametrize("model", ["IC", "LT"])
def test_ris_identity_for_seed_sets(topology, model):
    if model == "IC":
        graph = assign_ic_weights(topology)
        coll, _ = sample_rrr_ic(graph, 40_000, rng=1)
    else:
        graph = assign_lt_weights(topology)
        coll, _ = sample_rrr_lt(graph, 40_000, rng=1)
    rng = np.random.default_rng(2)
    for size in (1, 3, 8):
        seeds = rng.choice(graph.n, size=size, replace=False)
        ris = graph.n * coll.coverage(seeds)
        mc = estimate_spread(graph, seeds, model, 1200, rng=rng)
        assert ris == pytest.approx(mc, rel=0.2, abs=2.0), (model, size)


def test_counts_rank_matches_influence_rank(topology):
    """Vertices with higher RRR counts must have higher influence."""
    graph = assign_ic_weights(topology)
    coll, _ = sample_rrr_ic(graph, 40_000, rng=3)
    order = np.argsort(coll.counts)
    top, mid = int(order[-1]), int(order[graph.n // 2])
    sp_top = estimate_spread(graph, [top], "IC", 800, rng=4)
    sp_mid = estimate_spread(graph, [mid], "IC", 800, rng=4)
    assert sp_top >= sp_mid
