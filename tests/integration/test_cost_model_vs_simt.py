"""Cross-validation: the analytic cost model's operation counts must
agree with what the SIMT executor actually performs.

The cost model charges cycles per operation class *assuming* certain
counts (edges examined, queue pushes, binary-search probes).  The SIMT
executor tallies the real counts while running the same kernels; here we
check the assumptions, which is what makes the modeled speedup ratios
trustworthy."""

import numpy as np
import pytest

from repro.graphs import assign_ic_weights
from repro.graphs.generators import powerlaw_configuration
from repro.gpu.simt import simt_sample_ic, simt_select_seeds
from repro.rrr import sample_rrr_ic


@pytest.fixture(scope="module")
def graph():
    return assign_ic_weights(powerlaw_configuration(200, 1200, rng=17))


def test_sampling_rng_draws_track_edges_examined(graph):
    """Every examined edge costs one RNG draw in the model.  The SIMT
    warp issues 32 draws per in-edge *chunk* (inactive lanes draw too),
    so the tally must sit between the true edge count and
    ``edges + 32 * dequeued_vertices`` (one partial chunk per vertex),
    plus one thread-0 draw per set."""
    theta = 300
    coll, ops = simt_sample_ic(graph, theta, rng=1, warp_size=32)
    _, batch_trace = sample_rrr_ic(graph, 30_000, rng=1)
    mean_edges_per_set = batch_trace.edges_examined.mean()
    expected_edges = mean_edges_per_set * theta
    dequeued = coll.total_elements  # every stored vertex gets expanded once
    lower = expected_edges * 0.7
    upper = expected_edges * 1.4 + 32 * dequeued + theta
    assert lower <= ops.rng_draws <= upper


def test_sampling_atomics_track_set_sizes(graph):
    """Enqueue + offset + C-update atomics must scale with stored
    elements, as the queue/store cost formulas assume."""
    theta = 300
    coll, ops = simt_sample_ic(graph, theta, rng=2)
    elements = coll.total_elements
    # per element: 1 enqueue + 1 C-update; per set: 1 offset + 1 count
    expected_min = 2 * elements
    expected_max = 2 * elements + 3 * theta + elements
    assert expected_min <= ops.atomics <= expected_max


def test_selection_probe_depth_matches_model(graph):
    """The thread-scan model charges ceil(log2(avg_size+2)) probes per
    scanned set; the kernel's measured probes per scan must sit at or
    below that (binary search exits early on hits)."""
    coll, _ = sample_rrr_ic(graph, 800, rng=3)
    result, ops = simt_select_seeds(coll, 5)
    scans = result.stats.total_scans()
    model_depth = np.ceil(np.log2(result.stats.avg_set_size + 2.0))
    probes = ops.global_reads - scans - 5 * coll.n  # minus F probes & argmax
    assert probes <= scans * (model_depth + 1)
    assert probes >= scans * 0.5  # nonempty sets take at least one probe


def test_sort_shuffle_budget(graph):
    """The sort model charges ~size*log2(size)^2 comparator passes; the
    SIMT tallies must stay within that envelope."""
    theta = 200
    coll, ops = simt_sample_ic(graph, theta, rng=4)
    sizes = np.maximum(coll.sizes().astype(np.float64), 2.0)
    logs = np.ceil(np.log2(sizes))
    budget = float(np.sum(sizes * logs * logs))
    # shuffles include the sort passes (dominant term here)
    assert ops.shuffles <= budget * 1.5 + theta
