"""The SIMT kernels and the vectorized batch samplers must agree.

Three levels of agreement:
* invariants — sorted unique sets, source membership, counts consistency;
* exact — on deterministic graphs (p = 1) the set contents are forced;
* distributional — mean set size and singleton fraction match within
  sampling error on random graphs;
* selection — the Alg. 3 kernel returns byte-identical results to the
  library's greedy selection.
"""

import numpy as np
import pytest

from repro.graphs import DirectedGraph, assign_ic_weights, assign_lt_weights
from repro.graphs.generators import powerlaw_configuration
from repro.gpu.simt import simt_sample_ic, simt_sample_lt, simt_select_seeds
from repro.imm import select_seeds
from repro.rrr import sample_rrr_ic, sample_rrr_lt


@pytest.fixture(scope="module")
def ic_graph():
    return assign_ic_weights(powerlaw_configuration(150, 900, rng=5))


@pytest.fixture(scope="module")
def lt_graph():
    return assign_lt_weights(powerlaw_configuration(150, 900, rng=5))


def test_simt_ic_invariants(ic_graph):
    coll, ops = simt_sample_ic(ic_graph, 200, rng=1)
    assert coll.num_sets == 200
    for i in range(0, 200, 17):
        s = coll.set_at(i)
        assert np.all(np.diff(s) > 0)
        assert coll.sources[i] in s
    recount = np.bincount(coll.flat, minlength=ic_graph.n)
    assert np.array_equal(recount, coll.counts)
    assert ops.rng_draws > 0 and ops.atomics > 0


def test_simt_ic_deterministic_chain():
    g = DirectedGraph.from_edges([0, 1, 2], [1, 2, 3], n=4,
                                 weights=[1.0, 1.0, 1.0])
    coll, _ = simt_sample_ic(g, 100, rng=2)
    for i in range(100):
        src = coll.sources[i]
        assert list(coll.set_at(i)) == list(range(src + 1))


def test_simt_ic_matches_batch_distribution(ic_graph):
    simt_coll, _ = simt_sample_ic(ic_graph, 600, rng=3)
    batch_coll, _ = sample_rrr_ic(ic_graph, 20_000, rng=3)
    assert simt_coll.sizes().mean() == pytest.approx(
        batch_coll.sizes().mean(), rel=0.15
    )
    assert simt_coll.singleton_fraction() == pytest.approx(
        batch_coll.singleton_fraction(), abs=0.07
    )


def test_simt_lt_invariants(lt_graph):
    coll, _ = simt_sample_lt(lt_graph, 200, rng=4)
    assert coll.num_sets == 200
    for i in range(0, 200, 13):
        s = coll.set_at(i)
        assert np.all(np.diff(s) > 0)
        assert coll.sources[i] in s


def test_simt_lt_matches_batch_distribution(lt_graph):
    simt_coll, _ = simt_sample_lt(lt_graph, 600, rng=6)
    batch_coll, _ = sample_rrr_lt(lt_graph, 20_000, rng=6)
    assert simt_coll.sizes().mean() == pytest.approx(
        batch_coll.sizes().mean(), rel=0.15
    )


def test_simt_source_elimination(ic_graph):
    coll, _ = simt_sample_ic(ic_graph, 150, rng=7, eliminate_sources=True)
    assert coll.num_sets == 150
    assert coll.empty_fraction() == 0.0
    for i in range(0, 150, 11):
        assert coll.sources[i] not in coll.set_at(i)


def test_simt_selection_matches_library(ic_graph):
    coll, _ = sample_rrr_ic(ic_graph, 400, rng=8)
    kernel_result, ops = simt_select_seeds(coll, 6)
    library_result = select_seeds(coll, 6, strategy="reference")
    assert np.array_equal(kernel_result.seeds, library_result.seeds)
    assert kernel_result.covered_sets == library_result.covered_sets
    assert np.array_equal(kernel_result.marginal_gains,
                          library_result.marginal_gains)
    assert np.array_equal(kernel_result.stats.sets_scanned,
                          library_result.stats.sets_scanned)
    # every uncovered set costs at least one probe per iteration
    assert ops.global_reads >= kernel_result.stats.total_scans()


def test_simt_selection_probe_count_tracks_binary_search(ic_graph):
    """Binary-search probes must be O(log size) per set, not O(size)."""
    coll, _ = sample_rrr_ic(ic_graph, 500, rng=9)
    _, ops = simt_select_seeds(coll, 1)
    sizes = coll.sizes()
    max_probes = int(np.sum(np.ceil(np.log2(np.maximum(sizes, 2))) + 1))
    total_elements = int(sizes.sum())
    # exclude the F probes and the argmax read
    search_probes = ops.global_reads - coll.num_sets - coll.n
    assert search_probes <= max_probes
    if total_elements > 4 * coll.num_sets:
        assert search_probes < total_elements  # strictly beats linear scan


def test_simt_lt_walks_respect_weights():
    """Chain 0 -> 1 with weight w: fraction of 2-element sets ~ w."""
    g = DirectedGraph.from_edges([0], [1], n=2, weights=[0.3])
    coll, _ = simt_sample_lt(g, 1500, rng=10)
    from_1 = coll.sources == 1
    extended = np.asarray(
        [coll.set_at(i).size == 2 for i in np.flatnonzero(from_1)]
    )
    assert 0.24 < extended.mean() < 0.36
