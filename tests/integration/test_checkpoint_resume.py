"""A killed warm-start sweep resumes from disk with identical results.

Simulates the kill with :func:`clear_stores` (the in-memory registry —
everything a dead process loses — vanishes; the checkpoint directory
survives) and re-runs the same cell: the resumed run must produce the
identical table row while re-sampling nothing the first run completed.
"""

import numpy as np
import pytest

from repro import obs
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import compare_engines
from repro.rrr.store import clear_stores


@pytest.fixture(autouse=True)
def _fresh_registry():
    clear_stores()
    yield
    clear_stores()


def _config(checkpoint_dir):
    return ExperimentConfig(
        scale="tiny", datasets=("WV",), seed=7,
        theta_scale=0.2, sweep_theta_scale=0.2,
        warm_start=True, checkpoint_dir=str(checkpoint_dir),
    )


def test_sweep_resumes_identically_without_resampling(tmp_path):
    config = _config(tmp_path)
    with obs.profiled() as cold_handle:
        cold = compare_engines("WV", 8, 0.3, "IC", config,
                               include_curipples=False)
    cold_counters = cold_handle.report().counters
    assert cold_counters["rrr.store.checkpoint_saved_chunks"] > 0

    clear_stores()  # the "kill": all in-memory store state is gone
    with obs.profiled() as warm_handle:
        resumed = compare_engines("WV", 8, 0.3, "IC", config,
                                  include_curipples=False)
    warm_counters = warm_handle.report().counters

    # identical table row...
    assert np.array_equal(resumed.eim.seeds, cold.eim.seeds)
    assert np.array_equal(resumed.gim.seeds, cold.gim.seeds)
    assert resumed.eim.theta == cold.eim.theta
    assert resumed.gim.theta == cold.gim.theta
    assert resumed.table_cell_vs_gim() == cold.table_cell_vs_gim()
    # ...with every completed chunk read back instead of resampled
    assert warm_counters["rrr.store.checkpoint_loaded_sets"] > 0
    assert warm_counters.get("rrr.store.topups", 0) == 0
    assert warm_counters.get("rrr.store.sampled_sets", 0) == 0


def test_resume_extends_to_larger_cells(tmp_path):
    config = _config(tmp_path)
    compare_engines("WV", 4, 0.3, "IC", config, include_curipples=False)
    clear_stores()
    # the bigger cell tops the resumed streams up; a from-scratch sweep
    # over the same cells must agree exactly
    resumed = compare_engines("WV", 16, 0.3, "IC", config, include_curipples=False)
    clear_stores()
    fresh_cfg = _config(tmp_path / "fresh")
    fresh = compare_engines("WV", 16, 0.3, "IC", fresh_cfg, include_curipples=False)
    assert np.array_equal(resumed.eim.seeds, fresh.eim.seeds)
    assert np.array_equal(resumed.gim.seeds, fresh.gim.seeds)
    assert resumed.eim.theta == fresh.eim.theta
