"""End-to-end observability: run_imm(..., profile=True) produces a report
whose spans and metrics agree with the run's own diagnostics."""

import json

import numpy as np
import pytest

from repro import obs
from repro.imm import run_imm
from repro.imm.bounds import BoundsConfig


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.uninstall()
    yield
    obs.uninstall()


@pytest.fixture
def profiled_result(small_ic_graph):
    return run_imm(
        small_ic_graph, 5, 0.3, rng=0,
        bounds=BoundsConfig(theta_scale=0.2), profile=True,
    )


def test_profile_off_by_default(small_ic_graph):
    result = run_imm(small_ic_graph, 3, 0.4, rng=0,
                     bounds=BoundsConfig(theta_scale=0.1))
    assert result.profile is None
    assert not obs.enabled()
    assert obs.report().spans == []  # the run left nothing behind


def test_profile_emits_span_per_phase_stat(profiled_result):
    report = profiled_result.profile
    assert report is not None
    names = set(report.span_names())
    for phase in profiled_result.phases:
        assert f"imm.estimation.phase_{phase.index}" in names
    # exactly one estimation span per reported phase, no extras
    phase_spans = [n for n in report.span_names() if n.startswith("imm.estimation.")]
    assert len(phase_spans) == len(profiled_result.phases)


def test_profile_span_tree_structure(profiled_result):
    report = profiled_result.profile
    root = report.find_spans("imm.run")
    assert len(root) == 1 and root[0].depth == 0
    for s in report.spans:
        if s.name.startswith("imm.estimation."):
            assert s.path.startswith("imm.run/")
            assert s.depth == 1
    # every span closed within the root's window
    for s in report.spans:
        assert s.start >= root[0].start - 1e-9
        assert s.duration >= 0.0


def test_profile_metrics_match_run_diagnostics(profiled_result):
    report = profiled_result.profile
    # sampler counters agree with the run's own trace
    assert report.counters["rrr.sets_attempted"] == profiled_result.trace.attempted
    assert report.counters["rrr.edges_examined"] == (
        profiled_result.trace.total_edges_examined()
    )
    # selection counters cover at least the final selection's work
    assert report.counters["selection.iterations"] >= profiled_result.k
    assert report.gauges["imm.theta"] == profiled_result.theta
    assert report.gauges["rrr.flat_bytes"] == profiled_result.collection.flat.nbytes
    assert (
        report.gauges["rrr.offsets_bytes"]
        == profiled_result.collection.offsets.nbytes
    )


def test_profile_report_is_json_serializable(profiled_result):
    doc = obs.to_json(profiled_result.profile)
    roundtripped = json.loads(json.dumps(doc))
    assert roundtripped == doc
    assert len(doc["spans"]) == len(profiled_result.profile.spans)


def test_profile_uninstalls_after_run(small_ic_graph, profiled_result):
    assert not obs.enabled()
    # a second unprofiled run must not accumulate into the old report
    before = len(profiled_result.profile.spans)
    run_imm(small_ic_graph, 3, 0.4, rng=1, bounds=BoundsConfig(theta_scale=0.1))
    assert len(profiled_result.profile.spans) == before


def test_profile_respects_caller_installed_collectors(small_ic_graph):
    handle = obs.install()
    result = run_imm(small_ic_graph, 3, 0.4, rng=0,
                     bounds=BoundsConfig(theta_scale=0.1), profile=True)
    # the caller's collectors stay installed and hold the run's spans
    assert obs.enabled()
    assert obs.current_tracer() is handle.tracer
    assert result.profile is not None
    assert "imm.run" in result.profile.span_names()
    obs.uninstall()


def test_profiled_results_identical_to_unprofiled(small_ic_graph):
    kwargs = dict(k=4, epsilon=0.3, rng=7, bounds=BoundsConfig(theta_scale=0.2))
    plain = run_imm(small_ic_graph, **kwargs)
    profiled = run_imm(small_ic_graph, profile=True, **kwargs)
    assert np.array_equal(plain.seeds, profiled.seeds)
    assert plain.theta == profiled.theta
    assert np.array_equal(plain.collection.flat, profiled.collection.flat)


def test_final_selection_reused_when_collection_unchanged(small_ic_graph, monkeypatch):
    """When the final theta does not grow the collection, run_imm must not
    re-run greedy selection on the identical input."""
    import repro.imm.imm as imm_mod

    calls = []
    real_select = imm_mod.select_seeds

    def counting_select(collection, k, strategy="fast", **kwargs):
        calls.append(collection.num_sets)
        return real_select(collection, k, strategy=strategy, **kwargs)

    monkeypatch.setattr(imm_mod, "select_seeds", counting_select)
    result = run_imm(small_ic_graph, 2, 0.5, rng=0,
                     bounds=BoundsConfig(theta_scale=0.05))
    # selection runs once per estimation phase, plus at most one final run —
    # and that extra run is only allowed if the collection actually grew
    assert len(calls) in (len(result.phases), len(result.phases) + 1)
    if len(calls) == len(result.phases) + 1:
        assert calls[-1] > calls[-2]
    assert calls[-1] == result.collection.num_sets
