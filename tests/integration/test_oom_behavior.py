"""Capacity-pressure behaviour: on the pressure device, gIM must run out
of memory on the biggest workloads while eIM completes (the mechanism
behind the paper's OOM table entries), and the OOM cells must render with
the paper's ``OOM/<eIM seconds>`` convention."""

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments.runner import compare_engines


@pytest.fixture(scope="module")
def cfg():
    return ExperimentConfig(sweep_theta_scale=0.25)


@pytest.mark.slow
def test_gim_ooms_on_largest_dataset_eim_survives(cfg):
    row = compare_engines(
        "SL", 100, 0.05, "IC", cfg,
        include_curipples=False,
        device=cfg.device(pressure=True),
        bounds=cfg.bounds(sweep=True),
    )
    assert row.gim.oom
    assert not row.eim.oom
    cell = row.table_cell_vs_gim()
    assert cell.startswith("OOM/")
    float(cell.split("/")[1])  # eIM seconds parse


def test_no_oom_on_small_dataset_under_pressure(cfg):
    row = compare_engines(
        "WV", 100, 0.05, "IC", cfg,
        include_curipples=False,
        device=cfg.device(pressure=True),
        bounds=cfg.bounds(sweep=True),
    )
    assert not row.gim.oom and not row.eim.oom


def test_curipples_never_device_ooms(cfg):
    """cuRipples offloads R to the host, so device capacity does not kill
    it even where gIM dies (it just gets slower) — §2.3."""
    row = compare_engines(
        "CO", 100, 0.05, "IC", cfg,
        include_curipples=True,
        device=cfg.device(pressure=True),
        bounds=cfg.bounds(sweep=True),
    )
    assert row.gim.oom
    assert row.curipples is not None and not row.curipples.oom
    assert not row.eim.oom
