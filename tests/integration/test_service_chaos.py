"""Service-layer chaos hammer: the acceptance drill for serving resilience.

Eight client threads fire a mixed workload — some queries carrying tight
deadlines — at one :class:`~repro.service.service.InfluenceService`
while service-scoped ``REPRO_FAULTS`` clauses (slow queries, substrate
OOM, worker-thread crashes) fire underneath.  The contract under any
plan:

* **every submitted future resolves** — a result (possibly degraded), a
  :class:`DeadlineExceededError`, a :class:`CircuitOpenError`, the
  injected fault itself, or :class:`ServiceClosedError` at shutdown;
  never a stranded waiter;
* **no leaks** — worker threads join at close, no shared-memory
  segments stay registered;
* **determinism survives chaos** — every *non-degraded* completed query
  is bit-identical to a direct serial :func:`~repro.imm.imm.run_imm`
  against a fresh same-identity store.

In CI the service chaos matrix exports ``REPRO_FAULTS`` (one plan per
job) and ``REPRO_FAULTS_REPORT``; the service's health counters become
the build artifact.
"""

import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np
import pytest

from repro.imm.imm import run_imm
from repro.imm.options import IMMOptions
from repro.resilience.faults import ENV_VAR, InjectedFaultError
from repro.rrr.parallel import shutdown_pools
from repro.rrr.store import RRRStore
from repro.service import (
    InfluenceQuery,
    InfluenceService,
    ServiceOptions,
)
from repro.shm.segments import REGISTRY
from repro.utils.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    ServiceClosedError,
    ServiceOverloadedError,
)

# captured at import time: the CI matrix exports the plan before pytest
# starts, and the autouse scrub below must not erase it
_AMBIENT_FAULTS = os.environ.get(ENV_VAR, "").strip()
_REPORT_PATH = os.environ.get("REPRO_FAULTS_REPORT", "").strip()

#: the local drill when CI doesn't export a plan: all three service
#: scopes fire at deterministic occurrences
_DEFAULT_PLAN = (
    "slow(0.15)@queries#0,5;oom@substrate#1;crash@worker-thread#3"
)

CHUNK_SETS = 256
WORKLOAD = [(k, eps) for k in (2, 3, 4, 5) for eps in (0.3, 0.35)]
CLIENTS = 8
REPEATS = 3
#: every Nth query carries a deadline far too tight to finish cold
TIGHT_DEADLINE_EVERY = 7

_RESOLUTIONS = (
    DeadlineExceededError,
    CircuitOpenError,
    ServiceClosedError,
    MemoryError,
    InjectedFaultError,
)


@pytest.fixture(autouse=True)
def _pools_cleanup(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    yield
    shutdown_pools()


def _serial_answers(graph, options):
    answers = {}
    for k, eps in WORKLOAD:
        store = RRRStore(
            graph,
            model=options.model,
            eliminate_sources=options.eliminate_sources,
            n_jobs=options.n_jobs,
            chunk_sets=CHUNK_SETS,
            batch_size=options.batch_size,
            resilience=options.resilience,
        )
        answers[(k, eps)] = run_imm(graph, k, eps, options=options,
                                    store=store)
        store.close()
    return answers


def _service_worker_threads():
    return [
        t for t in threading.enumerate()
        if t.name.startswith("repro-service-worker") and t.is_alive()
    ]


def test_chaos_hammer_every_future_resolves(small_ic_graph, monkeypatch):
    plan = _AMBIENT_FAULTS or _DEFAULT_PLAN
    monkeypatch.setenv(ENV_VAR, plan)

    options = IMMOptions()
    expected = _serial_answers(small_ic_graph, options)
    baseline_workers = len(_service_worker_threads())

    service = InfluenceService(ServiceOptions(
        max_inflight=4, max_queue_depth=256, chunk_sets=CHUNK_SETS,
        breaker_failure_threshold=3, breaker_reset_timeout=0.5,
    ))
    service.register_graph("g", small_ic_graph)

    queries = []
    for repeat in range(REPEATS):
        for idx, (k, eps) in enumerate(WORKLOAD):
            n = repeat * len(WORKLOAD) + idx
            deadline = 0.002 if n % TIGHT_DEADLINE_EVERY == 6 else None
            queries.append(InfluenceQuery(
                "g", k=k, epsilon=eps, options=options, deadline=deadline,
            ))

    submitted = []
    lock = threading.Lock()

    def client(query):
        try:
            future = service.submit(query)
        except (ServiceOverloadedError, CircuitOpenError,
                ServiceClosedError):
            return  # rejected at admission: nothing to strand
        with lock:
            submitted.append((query, future))

    try:
        with ThreadPoolExecutor(max_workers=CLIENTS) as clients:
            list(clients.map(client, queries))
        assert service.drain(timeout=300) is True

        outcomes, failures = [], []
        for query, future in submitted:
            # the whole point: a bounded wait always resolves
            try:
                outcomes.append((query, future.result(timeout=60)))
            except _RESOLUTIONS as exc:
                failures.append((query, exc))
        assert len(outcomes) + len(failures) == len(submitted)

        # determinism survives chaos: non-degraded answers are
        # bit-identical to the serial ground truth
        checked = 0
        for query, outcome in outcomes:
            if outcome.degraded:
                continue
            truth = expected[(query.k, query.epsilon)]
            assert np.array_equal(outcome.seeds, truth.seeds), (
                f"k={query.k} eps={query.epsilon} diverged under {plan!r}"
            )
            assert outcome.result.theta == truth.theta
            checked += 1
        assert checked > 0, "chaos plan starved every query"

        health = service.health()
        assert health["workers_alive"] == 4
    finally:
        service.close()

    # zero leaked worker threads, zero leaked shm segments
    deadline = time.monotonic() + 10
    while (len(_service_worker_threads()) > baseline_workers
           and time.monotonic() < deadline):
        time.sleep(0.02)
    assert len(_service_worker_threads()) <= baseline_workers
    assert REGISTRY.active_count == 0

    if _REPORT_PATH:
        path = Path(_REPORT_PATH)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({
            "plan": plan,
            "submitted": len(submitted),
            "completed": len(outcomes),
            "failed": len(failures),
            "degraded": sum(1 for _, o in outcomes if o.degraded),
            "failure_kinds": sorted(
                {type(exc).__name__ for _, exc in failures}
            ),
            "counters": health["counters"],
            "breakers": health["breakers"],
        }, indent=2))


def test_chaos_close_mid_storm_strands_nothing(small_ic_graph, monkeypatch):
    """Closing while clients are still submitting resolves everything."""
    monkeypatch.setenv(ENV_VAR, "slow(0.1)@queries")
    service = InfluenceService(ServiceOptions(
        max_inflight=2, max_queue_depth=64, chunk_sets=CHUNK_SETS,
    ))
    service.register_graph("g", small_ic_graph)

    submitted = []
    lock = threading.Lock()
    storm = threading.Barrier(CLIENTS + 1)

    def client(idx):
        storm.wait()
        for i in range(4):
            query = InfluenceQuery("g", k=2 + (idx + i) % 4, epsilon=0.3)
            try:
                future = service.submit(query)
            except (ServiceClosedError, ServiceOverloadedError):
                continue
            with lock:
                submitted.append(future)

    threads = [
        threading.Thread(target=client, args=(i,)) for i in range(CLIENTS)
    ]
    for t in threads:
        t.start()
    storm.wait()
    time.sleep(0.05)  # let some queries land mid-flight
    service.close(wait=True)
    for t in threads:
        t.join(30)

    resolved = 0
    for future in submitted:
        try:
            outcome = future.result(timeout=30)
            assert len(outcome.seeds) == outcome.query.k
        except (ServiceClosedError, DeadlineExceededError):
            pass
        resolved += 1
    assert resolved == len(submitted)
    assert len(_service_worker_threads()) == 0
    assert REGISTRY.active_count == 0
