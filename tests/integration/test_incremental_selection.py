"""Incremental selection: strategy parity end-to-end and index reuse.

The :class:`~repro.imm.coverage.CoverageIndex` promises two things the
unit tests can't fully exercise: (1) every selection strategy produces
bit-identical seeds *and* :class:`SelectionStats` through a whole
``run_imm`` (phase loop + final selection), on both diffusion models,
with and without source elimination; (2) a store-backed sweep builds
each posting exactly once — top-ups and checkpoint resume extend the
same index instead of rebuilding it.
"""

import numpy as np
import pytest

from repro import obs
from repro.imm import IMMOptions, run_imm
from repro.imm.seed_selection import STRATEGIES
from repro.rrr.store import RRRStore, clear_stores

EPSILON = 0.4
K = 6


@pytest.fixture(autouse=True)
def _fresh_registry():
    clear_stores()
    yield
    clear_stores()


def _assert_runs_identical(a, b):
    assert np.array_equal(a.seeds, b.seeds)
    assert a.theta == b.theta
    assert np.array_equal(a.selection.marginal_gains, b.selection.marginal_gains)
    sa, sb = a.selection.stats, b.selection.stats
    assert np.array_equal(sa.sets_scanned, sb.sets_scanned)
    assert np.array_equal(sa.sets_found, sb.sets_found)
    assert np.array_equal(sa.elements_decremented, sb.elements_decremented)
    assert sa.avg_set_size == sb.avg_set_size


# -- strategy parity through run_imm ----------------------------------------
@pytest.mark.parametrize("model", ["IC", "LT"])
@pytest.mark.parametrize("eliminate", [False, True])
def test_strategies_identical_through_run_imm(
    small_ic_graph, small_lt_graph, model, eliminate
):
    graph = small_ic_graph if model == "IC" else small_lt_graph
    results = {
        strategy: run_imm(
            graph, K, EPSILON, rng=17,
            options=IMMOptions(
                model=model,
                eliminate_sources=eliminate,
                selection_strategy=strategy,
            ),
        )
        for strategy in STRATEGIES
    }
    _assert_runs_identical(results["fast"], results["lazy"])
    _assert_runs_identical(results["fast"], results["reference"])


def test_store_backed_strategies_identical(small_ic_graph):
    results = {}
    for strategy in STRATEGIES:
        store = RRRStore(small_ic_graph, entropy=(5, 5), chunk_sets=256)
        results[strategy] = run_imm(
            small_ic_graph, K, EPSILON, rng=17,
            options=IMMOptions(selection_strategy=strategy),
            store=store,
        )
        store.close()
    _assert_runs_identical(results["fast"], results["lazy"])
    _assert_runs_identical(results["fast"], results["reference"])


# -- index reuse across ensure top-ups --------------------------------------
def test_store_index_persists_across_topups(small_ic_graph):
    store = RRRStore(small_ic_graph, entropy=(1, 2), chunk_sets=128)
    store.ensure(300)
    with obs.profiled() as handle:
        first = store.coverage_index()
    built_first = handle.report().counters.get("selection.index.built_elements", 0)
    assert built_first == first.num_elements > 0

    # same theta: nothing new to index, and it is the same object
    with obs.profiled() as handle:
        again = store.coverage_index()
    assert again is first
    assert handle.report().counters.get("selection.index.built_elements", 0) == 0

    # a top-up indexes only the new suffix
    store.ensure(900)
    before = first.num_elements
    with obs.profiled() as handle:
        grown = store.coverage_index()
    counters = handle.report().counters
    assert grown is first
    assert counters.get("selection.index.built_elements", 0) == (
        grown.num_elements - before
    )
    assert counters.get("selection.index.reused_elements", 0) == before
    store.close()


def test_store_index_matches_fresh_build_after_topups(small_ic_graph):
    from repro.imm.coverage import CoverageIndex

    store = RRRStore(small_ic_graph, entropy=(1, 2), chunk_sets=128)
    for theta in (200, 450, 1000):
        store.ensure(theta)
        store.coverage_index()
    collection, _ = store.ensure(1000)
    incremental = store.coverage_index()
    fresh = CoverageIndex.build(collection)
    assert incremental.num_elements >= fresh.num_elements  # chunk overshoot
    limit = collection.total_elements
    for v in range(collection.n):
        assert np.array_equal(
            incremental.postings(v, limit), fresh.postings(v)
        ), v
    store.close()


def test_sweep_reuses_index_across_k_cells(small_ic_graph):
    """A k-sweep over one store pays the index build once (modulo growth)."""
    store = RRRStore(small_ic_graph, entropy=(8, 8), chunk_sets=256)
    seeds = {}
    with obs.profiled() as handle:
        for k in (2, 4, 8):
            seeds[k] = run_imm(
                small_ic_graph, k, EPSILON, rng=17,
                options=IMMOptions(selection_strategy="lazy"),
                store=store,
            ).seeds
    counters = handle.report().counters
    built = counters.get("selection.index.built_elements", 0)
    reused = counters.get("selection.index.reused_elements", 0)
    # every cached element indexed exactly once, reused many times over
    assert built == store.coverage_index().num_elements
    assert reused > built
    for k, s in seeds.items():
        assert s.size == k
    store.close()


# -- checkpoint resume -------------------------------------------------------
def test_checkpoint_resumed_store_index_parity(small_ic_graph, tmp_path):
    cold_store = RRRStore(
        small_ic_graph, entropy=(3, 4), chunk_sets=128,
        checkpoint_dir=tmp_path,
    )
    cold = run_imm(
        small_ic_graph, K, EPSILON, rng=17,
        options=IMMOptions(selection_strategy="lazy"),
        store=cold_store,
    )
    cold_index = cold_store.coverage_index()
    cold_store.close()
    clear_stores()  # the "kill": in-memory state gone, checkpoints survive

    resumed_store = RRRStore(
        small_ic_graph, entropy=(3, 4), chunk_sets=128,
        checkpoint_dir=tmp_path,
    )
    with obs.profiled() as handle:
        resumed = run_imm(
            small_ic_graph, K, EPSILON, rng=17,
            options=IMMOptions(selection_strategy="lazy"),
            store=resumed_store,
        )
    counters = handle.report().counters
    _assert_runs_identical(cold, resumed)
    # the resumed run re-sampled nothing...
    assert counters.get("rrr.store.sampled_sets", 0) == 0
    # ...and its index, grown over the checkpoint-loaded stream, matches
    # the uninterrupted one posting for posting
    resumed_index = resumed_store.coverage_index()
    assert resumed_index.num_elements == cold_index.num_elements
    for v in range(small_ic_graph.n):
        assert np.array_equal(resumed_index.postings(v), cold_index.postings(v))
    resumed_store.close()
