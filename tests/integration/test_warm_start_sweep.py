"""Warm-start sweep economics: a k-sweep samples O(max theta), not O(sum theta).

Runs the same tiny k-sweep twice through ``compare_engines`` — once
resampling every cell from scratch, once with ``warm_start=True`` so all
cells top up the two shared :class:`~repro.rrr.store.RRRStore` streams —
and compares the ``rrr.sets_sampled`` obs counter (every set the
samplers actually materialized, including store chunk overshoot).
"""

import numpy as np
import pytest

from repro import obs
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import compare_engines
from repro.rrr.store import clear_stores

K_SWEEP = (4, 8, 12, 16, 20)


@pytest.fixture(autouse=True)
def _fresh_registry():
    clear_stores()
    yield
    clear_stores()


def _run_sweep(warm_start: bool):
    clear_stores()
    config = ExperimentConfig(
        scale="tiny", datasets=("WV",), seed=7,
        theta_scale=0.2, sweep_theta_scale=0.2, warm_start=warm_start,
    )
    rows = []
    with obs.profiled() as handle:
        for k in K_SWEEP:
            rows.append(compare_engines("WV", k, 0.3, "IC", config,
                                        include_curipples=False))
    return handle.report().counters, rows


def test_warm_start_sweep_samples_fewer_sets():
    cold_counters, cold_rows = _run_sweep(warm_start=False)
    warm_counters, warm_rows = _run_sweep(warm_start=True)

    cold_sampled = cold_counters["rrr.sets_sampled"]
    warm_sampled = warm_counters["rrr.sets_sampled"]
    assert cold_sampled > 0
    # measurably fewer materialized sets (empirically ~0.6x here; allow
    # slack for bound/selection drift)
    assert warm_sampled < 0.85 * cold_sampled
    # and the cells genuinely read back cached sets
    assert warm_counters["rrr.store.reused_sets"] > 0
    assert cold_counters.get("rrr.store.reused_sets", 0) == 0

    # warm cells are still real IMM runs: full-size distinct seed sets
    for row, k in zip(warm_rows, K_SWEEP):
        for result in (row.eim, row.gim):
            assert len(set(result.seeds.tolist())) == k
            assert result.theta > 0


def test_warm_start_sweep_is_deterministic():
    _, first = _run_sweep(warm_start=True)
    _, second = _run_sweep(warm_start=True)
    for a, b in zip(first, second):
        assert np.array_equal(a.eim.seeds, b.eim.seeds)
        assert np.array_equal(a.gim.seeds, b.gim.seeds)
        assert a.eim.theta == b.eim.theta
