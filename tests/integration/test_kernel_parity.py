"""End-to-end kernel parity: the visited-mode and coverage-scan knobs
are purely operational, so full IMM runs — serial, pooled over both
data planes, fault-injected, and checkpoint-resumed — must produce
bit-identical seeds and statistics whichever implementations run."""

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import compare_engines
from repro.imm import IMMOptions, run_imm
from repro.resilience import ResilienceOptions
from repro.resilience.faults import ENV_VAR as FAULTS_ENV
from repro.rrr import sample_rrr_parallel
from repro.rrr.parallel import shutdown_pools
from repro.rrr.store import clear_stores


@pytest.fixture(autouse=True)
def _fresh_registries(monkeypatch):
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    clear_stores()
    yield
    clear_stores()
    shutdown_pools()


def _assert_same_result(ref, out):
    np.testing.assert_array_equal(out.seeds, ref.seeds)
    assert out.theta == ref.theta
    assert out.selection.covered_sets == ref.selection.covered_sets
    np.testing.assert_array_equal(out.collection.flat, ref.collection.flat)
    np.testing.assert_array_equal(out.collection.offsets, ref.collection.offsets)
    np.testing.assert_array_equal(
        out.selection.stats.sets_scanned, ref.selection.stats.sets_scanned
    )
    np.testing.assert_array_equal(
        out.selection.stats.elements_decremented,
        ref.selection.stats.elements_decremented,
    )


def _options(model, **kw):
    return IMMOptions(model=model, bounds=None, **kw)


@pytest.mark.parametrize("model", ["IC", "LT"])
def test_run_imm_parity_across_modes(model, small_ic_graph, small_lt_graph):
    graph = small_ic_graph if model == "IC" else small_lt_graph
    ref = run_imm(graph, 6, 0.3, rng=3,
                  options=_options(model, visited_mode="sorted",
                                   coverage_scan="csr"))
    for visited, scan in (("bitset", "bitset"), ("auto", "auto"),
                          ("bitset", "csr"), ("sorted", "bitset")):
        out = run_imm(graph, 6, 0.3, rng=3,
                      options=_options(model, visited_mode=visited,
                                       coverage_scan=scan))
        _assert_same_result(ref, out)


@pytest.mark.parametrize("model", ["IC", "LT"])
def test_pooled_sampling_parity_fork(model, small_ic_graph, small_lt_graph):
    """Workers resolve the mode from the job tuple, not their own env:
    a 2-worker fork pool must match the serial stream in every mode."""
    graph = small_ic_graph if model == "IC" else small_lt_graph
    ref, _ = sample_rrr_parallel(graph, 500, rng=11, n_jobs=2,
                                 visited_mode="sorted")
    for mode in ("bitset", "auto"):
        coll, _ = sample_rrr_parallel(graph, 500, rng=11, n_jobs=2,
                                      visited_mode=mode)
        np.testing.assert_array_equal(coll.flat, ref.flat)
        np.testing.assert_array_equal(coll.offsets, ref.offsets)
        np.testing.assert_array_equal(coll.sources, ref.sources)
    shutdown_pools()


def test_pooled_sampling_parity_spawn(small_ic_graph):
    """One spawn-context case: fresh interpreters, same stream."""
    from repro.rrr.parallel import SamplerPool

    ref, _ = sample_rrr_parallel(small_ic_graph, 300, rng=13, n_jobs=2,
                                 visited_mode="sorted")
    with SamplerPool(small_ic_graph, 2, mp_context="spawn") as pool:
        coll, _ = pool.sample("IC", 300, rng=13, visited_mode="bitset")
    np.testing.assert_array_equal(coll.flat, ref.flat)
    np.testing.assert_array_equal(coll.offsets, ref.offsets)


def test_crash_recovery_parity_in_bitset_mode(small_ic_graph, monkeypatch):
    """A worker crash mid-stream retries onto the same bit-identical
    chunks regardless of the visited implementation."""
    clean, _ = sample_rrr_parallel(small_ic_graph, 400, rng=7, n_jobs=2,
                                   visited_mode="sorted")
    monkeypatch.setenv(FAULTS_ENV, "crash@1")
    coll, trace = sample_rrr_parallel(
        small_ic_graph, 400, rng=7, n_jobs=2, visited_mode="bitset",
        resilience=ResilienceOptions(backoff_base=0.0),
    )
    np.testing.assert_array_equal(coll.flat, clean.flat)
    np.testing.assert_array_equal(coll.offsets, clean.offsets)
    assert trace.resilience.crashes >= 1


def test_warm_start_checkpoint_resume_parity(tmp_path):
    """A checkpointed sweep written under one visited mode resumes under
    the other with the identical table row: chunk bytes on disk are
    mode-independent."""
    def config(visited, scan, checkpoint_dir):
        return ExperimentConfig(
            scale="tiny", datasets=("WV",), seed=7,
            theta_scale=0.2, sweep_theta_scale=0.2,
            warm_start=True, checkpoint_dir=str(checkpoint_dir),
            visited_mode=visited, coverage_scan=scan,
        )

    cold = compare_engines("WV", 8, 0.3, "IC",
                           config("sorted", "csr", tmp_path),
                           include_curipples=False)
    clear_stores()  # the "kill": in-memory state gone, checkpoints stay
    resumed = compare_engines("WV", 8, 0.3, "IC",
                              config("bitset", "bitset", tmp_path),
                              include_curipples=False)
    assert np.array_equal(resumed.eim.seeds, cold.eim.seeds)
    assert np.array_equal(resumed.gim.seeds, cold.gim.seeds)
    assert resumed.eim.theta == cold.eim.theta
    assert resumed.table_cell_vs_gim() == cold.table_cell_vs_gim()

    # and a from-scratch bitset sweep agrees with the sorted one
    clear_stores()
    fresh = compare_engines("WV", 8, 0.3, "IC",
                            config("bitset", "bitset", tmp_path / "fresh"),
                            include_curipples=False)
    assert np.array_equal(fresh.eim.seeds, cold.eim.seeds)
    assert fresh.eim.theta == cold.eim.theta
