"""Shared fixtures: small deterministic graphs and experiment configs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import DirectedGraph, assign_ic_weights, assign_lt_weights
from repro.graphs.generators import powerlaw_configuration


@pytest.fixture
def line_graph() -> DirectedGraph:
    """0 -> 1 -> 2 -> 3 (CSC in-edges; deterministic cascades with p=1)."""
    return DirectedGraph.from_edges([0, 1, 2], [1, 2, 3], n=4)


@pytest.fixture
def diamond_graph() -> DirectedGraph:
    """0 -> {1, 2} -> 3: the classic union-probability example."""
    return DirectedGraph.from_edges([0, 0, 1, 2], [1, 2, 3, 3], n=4)


@pytest.fixture
def small_ic_graph() -> DirectedGraph:
    """A 300-vertex power-law graph with IC (1/d_in) weights."""
    return assign_ic_weights(powerlaw_configuration(300, 1800, rng=123))


@pytest.fixture
def small_lt_graph() -> DirectedGraph:
    """The same topology with LT weights."""
    return assign_lt_weights(powerlaw_configuration(300, 1800, rng=123))


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(99)
