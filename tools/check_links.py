#!/usr/bin/env python
"""Markdown link checker for the repository's docs.

Walks every tracked ``*.md`` file and verifies that each relative link
target exists — files resolve on disk, and ``#fragment`` anchors match
a heading in the target document (GitHub slug rules, simplified).
External ``http(s)://`` links are *not* fetched (CI must stay
offline-deterministic); they are only syntax-checked.

Exit status: 0 when every link resolves, 1 otherwise (each failure is
printed as ``file:line: message``).

Run from the repository root::

    python tools/check_links.py
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

LINK = re.compile(r"\[(?:[^\]]*)\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
SKIP_DIRS = {".git", "__pycache__", "node_modules", ".pytest_cache",
             "benchmarks/reports"}


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading (simplified, ASCII-focused)."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set:
    text = path.read_text(encoding="utf-8")
    return {github_slug(m.group(1)) for m in HEADING.finditer(text)}


def markdown_files(root: Path):
    for path in sorted(root.rglob("*.md")):
        rel = path.relative_to(root)
        if any(str(rel).startswith(d) for d in SKIP_DIRS):
            continue
        yield path


def check_file(path: Path, root: Path) -> list:
    failures = []
    text = path.read_text(encoding="utf-8")
    in_code = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_code = not in_code
            continue
        if in_code:
            continue
        for match in LINK.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            base, _, fragment = target.partition("#")
            if base:
                resolved = (path.parent / base).resolve()
                if not resolved.exists():
                    failures.append(
                        f"{path.relative_to(root)}:{lineno}: "
                        f"broken link target {target!r}"
                    )
                    continue
            else:
                resolved = path
            if fragment and resolved.suffix == ".md":
                if github_slug(fragment) not in anchors_of(resolved):
                    failures.append(
                        f"{path.relative_to(root)}:{lineno}: "
                        f"anchor #{fragment} not found in "
                        f"{resolved.relative_to(root)}"
                    )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=str(Path(__file__).resolve().parent.parent),
                        help="repository root (default: the checkout)")
    args = parser.parse_args(argv)
    root = Path(args.root).resolve()

    failures = []
    checked = 0
    for path in markdown_files(root):
        checked += 1
        failures.extend(check_file(path, root))

    for failure in failures:
        print(failure)
    print(f"[check_links] {checked} markdown files, "
          f"{len(failures)} broken links")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
